package registry

// Fuzz target for the snapshot wire format. ImportDoc is the store's only
// entry point for bytes it did not write itself (fleet push/pull), so its
// contract is strict: any mutation of a snapshot document is rejected with
// an error wrapping ErrCorrupt or ErrIncompatible, and a document that is
// accepted must load back as a complete, usable model set — never a partial
// one. Seed corpus under testdata/fuzz/ runs as regressions in plain
// `go test`; CI adds a bounded fuzzing pass.

import (
	"errors"
	"testing"
)

func FuzzSnapshotLoad(f *testing.F) {
	// The richest seed is a real exported snapshot; its mutations teach the
	// fuzzer the document shape. Static corpus files under testdata/fuzz/
	// cover the shape-free failure modes (garbage, truncation, bad ids).
	_, models := trainSmall(f)
	src, err := Open("")
	if err != nil {
		f.Fatal(err)
	}
	man, err := src.Save("titanx", "", models, Training{SettingsPerKernel: 3, Kernels: 106, Samples: 954})
	if err != nil {
		f.Fatal(err)
	}
	doc, err := src.ExportDoc("titanx", man.Version)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(doc)
	flip := func(i int) []byte {
		m := append([]byte(nil), doc...)
		m[i] ^= 0x20
		return m
	}
	f.Add(flip(len(doc) / 2)) // content mutation → hash mismatch
	f.Add(flip(len(doc) - 2)) // tail mutation
	f.Add(doc[:len(doc)/2])   // truncated document

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Open("") // fresh in-memory store per input
		if err != nil {
			t.Fatal(err)
		}
		man, err := s.ImportDoc(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrIncompatible) {
				t.Fatalf("ImportDoc rejected input with an unclassified error: %v", err)
			}
			return
		}
		// Accepted documents must load back complete — the verified bytes
		// were published verbatim, so a partial or unusable model set here
		// means verification let a mutation through.
		m, man2, err := s.Load(man.Device, man.Version)
		if err != nil {
			t.Fatalf("imported document failed to load back: %v", err)
		}
		if m == nil || m.Speedup == nil || m.Energy == nil {
			t.Fatalf("imported document loaded a partial model set: %+v", m)
		}
		if man2.Hash != man.Hash {
			t.Fatalf("hash changed across import/load: %s vs %s", man2.Hash, man.Hash)
		}
	})
}
