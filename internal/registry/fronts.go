package registry

import (
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/features"
)

// FrontEntry is one kernel's precomputed prediction data: the full
// (speedup, energy) grid over the modeled frequency ladder and the Pareto
// set derived from it (modeled front points plus, when the device has one,
// the trailing mem-L heuristic point) — exactly what a live
// engine.Predictor.ParetoSet sweep would produce for the same features.
type FrontEntry struct {
	// Name labels the kernel the entry was computed for (diagnostic only;
	// lookups key on Features).
	Name string `json:"name"`
	// Features is the static feature vector the entry is keyed by.
	Features features.Static `json:"features"`
	// Grid is the model prediction at every modeled ladder configuration,
	// in ladder order.
	Grid []core.Prediction `json:"grid"`
	// Pareto is the derived Pareto set, ascending by speedup, with the
	// mem-L heuristic point appended when the device defines one.
	Pareto []core.Prediction `json:"pareto"`
}

// Fronts is the publish-time prediction table of a snapshot: one entry per
// training kernel, computed by sweeping the full frequency ladder with the
// snapshot's own models at publish time. A governor holding the table
// resolves policies for known kernels with a map lookup — zero SVR
// evaluations — and falls back to the live sweep for unknown kernels.
type Fronts struct {
	// Kernels lists the per-kernel entries in publication order.
	Kernels []FrontEntry `json:"kernels"`
}

// FrontsInfo is the manifest's summary of a snapshot's precomputed fronts:
// the kernel count and a SHA-256 hash of the serialized table, verified on
// load exactly like the model hash. Nil on snapshots published without
// fronts (pre-fronts binaries), which still load and serve.
type FrontsInfo struct {
	// Kernels is the number of per-kernel entries.
	Kernels int `json:"kernels"`
	// Hash is the SHA-256 hex digest of the canonical serialized table.
	Hash string `json:"hash"`
}

// ComputeFronts sweeps the full modeled frequency ladder for every kernel
// with the predictor's models and derives each kernel's Pareto set — the
// publish-time half of the front-backed serving path. The entries are
// bit-identical to what a live ParetoSet sweep over the same models
// produces, so serving from the table is indistinguishable from serving
// the sweep (pinned by the registry tests).
func ComputeFronts(pred *engine.Predictor, kernels []core.TrainingKernel) *Fronts {
	f := &Fronts{Kernels: make([]FrontEntry, 0, len(kernels))}
	seen := make(map[features.Static]bool, len(kernels))
	for _, k := range kernels {
		if seen[k.Features] {
			continue // identical feature vectors share one entry
		}
		seen[k.Features] = true
		grid := pred.PredictAll(k.Features, nil)
		front := core.ParetoFront(grid)
		if heur, ok := pred.Core().MemLHeuristic(k.Features); ok {
			front = append(front, heur)
		}
		f.Kernels = append(f.Kernels, FrontEntry{
			Name:     k.Name,
			Features: k.Features,
			Grid:     grid,
			Pareto:   front,
		})
	}
	return f
}

// Map returns the lookup table the policy governor consumes: static
// features to Pareto set. The returned slices alias the table; callers
// must not mutate them.
func (f *Fronts) Map() map[features.Static][]core.Prediction {
	if f == nil {
		return nil
	}
	out := make(map[features.Static][]core.Prediction, len(f.Kernels))
	for i := range f.Kernels {
		out[f.Kernels[i].Features] = f.Kernels[i].Pareto
	}
	return out
}

// Len returns the number of per-kernel entries (0 for a nil table).
func (f *Fronts) Len() int {
	if f == nil {
		return 0
	}
	return len(f.Kernels)
}

// encodeFronts serializes a fronts table and returns the document plus its
// content hash (the value recorded in — and verified against — the
// manifest's FrontsInfo).
func encodeFronts(f *Fronts) (doc []byte, hash string, err error) {
	doc, err = json.Marshal(f)
	if err != nil {
		return nil, "", fmt.Errorf("registry: encoding fronts: %w", err)
	}
	hash, err = hashRaw(doc)
	if err != nil {
		return nil, "", err
	}
	return doc, hash, nil
}

// decodeFronts parses and integrity-checks a snapshot's fronts section
// against its manifest summary. Both absent is the pre-fronts format and
// returns (nil, nil); one present without the other, a hash mismatch, or
// a kernel-count mismatch is corruption.
func decodeFronts(device, version string, raw json.RawMessage, info *FrontsInfo) (*Fronts, error) {
	if len(raw) == 0 && info == nil {
		return nil, nil
	}
	if len(raw) == 0 || info == nil {
		return nil, fmt.Errorf("%w: %s/%s: fronts section and manifest fronts summary disagree",
			ErrCorrupt, device, version)
	}
	hash, err := hashRaw(raw)
	if err != nil {
		return nil, fmt.Errorf("%w: %s/%s: %v", ErrCorrupt, device, version, err)
	}
	if hash != info.Hash {
		return nil, fmt.Errorf("%w: %s/%s: fronts hash mismatch (manifest %.8s…, computed %.8s…)",
			ErrCorrupt, device, version, info.Hash, hash)
	}
	var f Fronts
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("%w: %s/%s: fronts: %v", ErrCorrupt, device, version, err)
	}
	if len(f.Kernels) != info.Kernels {
		return nil, fmt.Errorf("%w: %s/%s: fronts carry %d kernels, manifest claims %d",
			ErrCorrupt, device, version, len(f.Kernels), info.Kernels)
	}
	return &f, nil
}
