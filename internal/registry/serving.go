package registry

import (
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/policy"
)

// VersionStats is the serving-side accounting of one model version: the
// engine predictor's SVR-evaluation cache counters and the policy
// governor's decision-cache counters accumulated while the version was
// (or is) active. Stats for retired versions are frozen at swap time, so
// a retrain no longer discards the in-flight counters of the model it
// replaces.
type VersionStats struct {
	// Predictor is the SVR-evaluation cache accounting.
	Predictor engine.CacheStats `json:"predictor"`
	// Decisions is the policy governor's decision-cache accounting.
	Decisions policy.Stats `json:"decisions"`
	// Live marks the currently serving version; retired versions report
	// their final counters.
	Live bool `json:"live"`
	// RetiredAt is when a retired version stopped serving (zero while Live).
	RetiredAt time.Time `json:"retired_at"`
}

// Serving is the in-process half of the registry: it holds the active
// (version, predictor, governor) triple behind an RWMutex and swaps it
// atomically when a new version is installed, so /predict and /select
// readers never block on a retrain — they either see the old triple or
// the new one, both complete. It also archives the final cache counters
// of every retired version, keyed by version id.
type Serving struct {
	mu      sync.RWMutex
	version string
	pred    *engine.Predictor
	gov     *policy.Governor
	retired map[string]VersionStats
	swaps   int
}

// NewServing returns an empty serving holder; Install publishes the first
// version.
func NewServing() *Serving {
	return &Serving{retired: map[string]VersionStats{}}
}

// Install atomically swaps the active version: the outgoing predictor and
// governor counters are frozen into the retired-stats archive, and the new
// predictor is published together with a fresh governor built over it
// (decisions cached against the old models must not outlive them).
// In-flight requests holding the previous triple finish against it safely;
// new requests see the new one. The governor carries no front table; the
// serving path uses InstallWithFronts.
func (s *Serving) Install(version string, pred *engine.Predictor) {
	s.InstallWithFronts(version, pred, nil)
}

// InstallWithFronts is Install with the snapshot's publish-time front
// table: the fresh governor resolves kernels in the table with zero SVR
// evaluations and falls back to live sweeps for the rest. A nil table
// behaves exactly like Install.
func (s *Serving) InstallWithFronts(version string, pred *engine.Predictor, fronts *Fronts) {
	gov := policy.NewGovernorWithFronts(pred, 0, fronts.Map())
	s.mu.Lock()
	defer s.mu.Unlock()
	s.retire()
	s.version = version
	s.pred = pred
	s.gov = gov
	s.swaps++
}

// retire freezes the current version's counters. Caller holds mu.
func (s *Serving) retire() {
	if s.pred == nil {
		return
	}
	s.retired[s.version] = VersionStats{
		Predictor: s.pred.Stats(),
		Decisions: s.gov.Stats(),
		RetiredAt: time.Now().UTC(),
	}
}

// Current returns the active version id, predictor, and governor as one
// consistent snapshot. ok is false before the first Install.
func (s *Serving) Current() (version string, pred *engine.Predictor, gov *policy.Governor, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version, s.pred, s.gov, s.pred != nil
}

// Version returns the active version id ("" before the first Install).
func (s *Serving) Version() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version
}

// Swaps returns how many times Install has published a version.
func (s *Serving) Swaps() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.swaps
}

// StatsFor returns the serving stats recorded for a version: live counters
// for the active version, frozen ones for a retired version. ok is false
// for versions that never served.
func (s *Serving) StatsFor(version string) (VersionStats, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if version != "" && version == s.version && s.pred != nil {
		return VersionStats{Predictor: s.pred.Stats(), Decisions: s.gov.Stats(), Live: true}, true
	}
	vs, ok := s.retired[version]
	return vs, ok
}

// AllStats returns the stats of every version that has served in this
// process, live and retired, keyed by version id.
func (s *Serving) AllStats() map[string]VersionStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]VersionStats, len(s.retired)+1)
	for v, vs := range s.retired {
		out[v] = vs
	}
	if s.pred != nil {
		out[s.version] = VersionStats{Predictor: s.pred.Stats(), Decisions: s.gov.Stats(), Live: true}
	}
	return out
}
