package registry

import (
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
)

// frontsSmall computes the publish-time front table for the shared small
// model set over every training kernel.
func frontsSmall(t *testing.T) (*engine.Engine, *core.Models, *Fronts) {
	t.Helper()
	eng, models := trainSmall(t)
	pred := engine.NewPredictor(models, eng.Harness().Device().Sim().Ladder, eng.Options())
	return eng, models, ComputeFronts(pred, engine.TrainingKernels())
}

func TestSaveWithFrontsRoundTripBitIdentical(t *testing.T) {
	_, models, fronts := frontsSmall(t)
	if fronts.Len() == 0 {
		t.Fatal("ComputeFronts returned no kernels")
	}
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	man, err := store.SaveWithFronts("titanx", "", models,
		Training{SettingsPerKernel: 3, Kernels: 106, Samples: 318}, fronts)
	if err != nil {
		t.Fatal(err)
	}
	if man.Fronts == nil {
		t.Fatal("manifest carries no fronts info")
	}
	if man.Fronts.Kernels != fronts.Len() || man.Fronts.Hash == "" {
		t.Fatalf("fronts info %+v, want %d kernels and a hash", man.Fronts, fronts.Len())
	}

	_, loaded, man2, err := store.LoadFull("titanx", man.Version)
	if err != nil {
		t.Fatal(err)
	}
	if loaded == nil || loaded.Len() != fronts.Len() {
		t.Fatalf("loaded fronts = %v, want %d kernels", loaded, fronts.Len())
	}
	if man2.Fronts == nil || man2.Fronts.Hash != man.Fronts.Hash {
		t.Fatalf("fronts hash changed across load: %+v vs %+v", man2.Fronts, man.Fronts)
	}
	// Re-encoding the loaded table must reproduce the stored hash exactly:
	// the fronts round-trip bit-identically through JSON.
	_, rehash, err := encodeFronts(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if rehash != man.Fronts.Hash {
		t.Fatalf("re-encoded fronts hash %s != stored %s", rehash, man.Fronts.Hash)
	}

	// LoadFronts on the activated version resolves the same table.
	if err := store.Activate("titanx", man.Version); err != nil {
		t.Fatal(err)
	}
	active, err := store.LoadFronts("titanx", "")
	if err != nil {
		t.Fatal(err)
	}
	if active == nil || active.Len() != fronts.Len() {
		t.Fatalf("LoadFronts(active) = %v, want %d kernels", active, fronts.Len())
	}
}

func TestFrontsMatchLiveSweep(t *testing.T) {
	eng, models, fronts := frontsSmall(t)
	pred := engine.NewPredictor(models, eng.Harness().Device().Sim().Ladder, eng.Options())
	kernels := engine.TrainingKernels()
	checked := 0
	for _, k := range kernels[:8] {
		entry, ok := findFront(fronts, k.Name)
		if !ok {
			t.Fatalf("no front entry for training kernel %s", k.Name)
		}
		live := pred.ParetoSet(k.Features)
		if len(entry.Pareto) != len(live) {
			t.Fatalf("%s: stored front has %d points, live sweep %d", k.Name, len(entry.Pareto), len(live))
		}
		for i := range live {
			if entry.Pareto[i].Config != live[i].Config ||
				math.Abs(entry.Pareto[i].Speedup-live[i].Speedup) > 1e-12 ||
				math.Abs(entry.Pareto[i].NormEnergy-live[i].NormEnergy) > 1e-12 {
				t.Fatalf("%s point %d: stored %+v, live %+v", k.Name, i, entry.Pareto[i], live[i])
			}
		}
		grid := pred.PredictAll(k.Features, nil)
		if len(entry.Grid) != len(grid) {
			t.Fatalf("%s: stored grid has %d points, live %d", k.Name, len(entry.Grid), len(grid))
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no kernels checked")
	}
}

func findFront(f *Fronts, name string) (FrontEntry, bool) {
	for _, e := range f.Kernels {
		if e.Name == name {
			return e, true
		}
	}
	return FrontEntry{}, false
}

// TestSnapshotWithoutFrontsCompat pins the backward-compatibility contract:
// a snapshot saved without fronts (the pre-fronts on-disk format) has no
// fronts key anywhere in the document, still loads, activates and serves,
// and reports a nil front table.
func TestSnapshotWithoutFrontsCompat(t *testing.T) {
	_, models := trainSmall(t)
	dir := t.TempDir()
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	man, err := store.Save("titanx", "", models, Training{SettingsPerKernel: 3})
	if err != nil {
		t.Fatal(err)
	}
	if man.Fronts != nil {
		t.Fatalf("frontless manifest carries fronts info: %+v", man.Fronts)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "titanx", man.Version+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), `"fronts"`) {
		t.Fatal("frontless snapshot document mentions fronts; pre-fronts format broken")
	}
	if err := store.Activate("titanx", man.Version); err != nil {
		t.Fatal(err)
	}
	m, fronts, man2, err := store.LoadFull("titanx", "")
	if err != nil {
		t.Fatal(err)
	}
	if fronts != nil || man2.Fronts != nil {
		t.Fatalf("frontless load returned fronts %v / info %+v", fronts, man2.Fronts)
	}
	if m.Speedup.NumSV() != models.Speedup.NumSV() {
		t.Fatal("frontless snapshot did not round-trip the models")
	}
	if f, err := store.LoadFronts("titanx", ""); err != nil || f != nil {
		t.Fatalf("LoadFronts on frontless snapshot = %v, %v; want nil, nil", f, err)
	}
}

// TestFrontsTamperRejected covers the integrity contract: fronts bytes are
// hash-covered, and a fronts section without manifest bookkeeping (or vice
// versa) is corruption.
func TestFrontsTamperRejected(t *testing.T) {
	_, models, fronts := frontsSmall(t)
	dir := t.TempDir()
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	man, err := store.SaveWithFronts("titanx", "", models, Training{SettingsPerKernel: 3}, fronts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "titanx", man.Version+".json")
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	tamper := func(t *testing.T, mutate func(doc map[string]json.RawMessage)) {
		t.Helper()
		var doc map[string]json.RawMessage
		if err := json.Unmarshal(pristine, &doc); err != nil {
			t.Fatal(err)
		}
		mutate(doc)
		raw, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := store.LoadFull("titanx", man.Version); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("tampered snapshot loaded: err = %v, want ErrCorrupt", err)
		}
	}

	t.Run("fronts bytes flipped", func(t *testing.T) {
		tamper(t, func(doc map[string]json.RawMessage) {
			s := string(doc["fronts"])
			// Flip one digit inside the serialized front table.
			i := strings.Index(s, `"speedup":`)
			if i < 0 {
				t.Fatal("no speedup field in fronts")
			}
			doc["fronts"] = json.RawMessage(s[:i] + `"speedup":1e9,"was_speedup":` + s[i+len(`"speedup":`):])
		})
	})
	t.Run("fronts without manifest info", func(t *testing.T) {
		tamper(t, func(doc map[string]json.RawMessage) {
			var manDoc map[string]json.RawMessage
			if err := json.Unmarshal(doc["manifest"], &manDoc); err != nil {
				t.Fatal(err)
			}
			delete(manDoc, "fronts")
			raw, err := json.Marshal(manDoc)
			if err != nil {
				t.Fatal(err)
			}
			doc["manifest"] = raw
		})
	})
	t.Run("manifest info without fronts", func(t *testing.T) {
		tamper(t, func(doc map[string]json.RawMessage) {
			delete(doc, "fronts")
		})
	})
}
