package registry

import (
	"context"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/features"
	"repro/internal/policy"
)

func installVersion(t *testing.T, s *Serving, eng *engine.Engine, version string, m *core.Models) {
	t.Helper()
	eng.SetModels(m)
	pred, err := eng.Predictor()
	if err != nil {
		t.Fatal(err)
	}
	s.Install(version, pred)
}

func TestServingInstallAndStats(t *testing.T) {
	eng, models := trainSmall(t)
	s := NewServing()
	if _, _, _, ok := s.Current(); ok {
		t.Fatal("empty serving reports an active triple")
	}
	if s.Version() != "" {
		t.Fatalf("version before install = %q", s.Version())
	}

	installVersion(t, s, eng, "v0001", models)
	version, pred, gov, ok := s.Current()
	if !ok || version != "v0001" || pred == nil || gov == nil {
		t.Fatalf("Current after install: %q %v %v %v", version, pred, gov, ok)
	}
	if gov.Predictor() != pred {
		t.Fatal("governor not bound to the installed predictor")
	}

	// Generate some traffic so v0001 has non-zero counters.
	st := engine.TrainingKernels()[0].Features
	pred.ParetoSet(st)
	if _, err := gov.Decide(st, policy.Spec{Name: policy.EDP}); err != nil {
		t.Fatal(err)
	}
	vs, ok := s.StatsFor("v0001")
	if !ok || !vs.Live || vs.Predictor.Misses == 0 || vs.Decisions.Misses == 0 {
		t.Fatalf("live stats: %+v, %v", vs, ok)
	}

	// Swap: v0001's counters must be preserved (frozen), not dropped.
	installVersion(t, s, eng, "v0002", models)
	old, ok := s.StatsFor("v0001")
	if !ok || old.Live || old.Predictor.Misses == 0 || old.Decisions.Misses == 0 || old.RetiredAt.IsZero() {
		t.Fatalf("retired stats lost on swap: %+v, %v", old, ok)
	}
	fresh, ok := s.StatsFor("v0002")
	if !ok || !fresh.Live || fresh.Decisions.Misses != 0 {
		t.Fatalf("new version stats not fresh: %+v, %v", fresh, ok)
	}
	if s.Swaps() != 2 {
		t.Fatalf("swaps = %d, want 2", s.Swaps())
	}
	if all := s.AllStats(); len(all) != 2 || !all["v0002"].Live || all["v0001"].Live {
		t.Fatalf("AllStats: %+v", all)
	}
	if _, ok := s.StatsFor("v9999"); ok {
		t.Fatal("stats reported for a version that never served")
	}
}

// TestConcurrentPredictDuringHotSwap is the -race acceptance check:
// prediction and selection traffic runs non-stop while versions hot-swap
// underneath; every reader must see a complete (version, predictor,
// governor) triple and never block on or observe a half-installed swap.
func TestConcurrentPredictDuringHotSwap(t *testing.T) {
	eng, models := trainSmall(t)
	s := NewServing()
	installVersion(t, s, eng, "v0001", models)

	kernels := engine.TrainingKernels()
	sts := make([]features.Static, 8)
	for i := range sts {
		sts[i] = kernels[i*3].Features
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				version, pred, gov, ok := s.Current()
				if !ok || version == "" || pred == nil || gov == nil {
					t.Errorf("incomplete triple under swap: %q %v %v", version, pred, gov)
					return
				}
				st := sts[(w+i)%len(sts)]
				if set := pred.ParetoSet(st); len(set) == 0 {
					t.Error("empty Pareto set under swap")
					return
				}
				if _, err := gov.Decide(st, policy.Spec{Name: policy.EDP}); err != nil {
					t.Errorf("decide under swap: %v", err)
					return
				}
			}
		}(w)
	}

	// Hot-swap repeatedly while traffic flows; the predictor is rebuilt
	// each time, exactly as a background retrain installs a new version.
	ladder := eng.Harness().Device().Sim().Ladder
	for i := 2; i < 30; i++ {
		pred := engine.NewPredictor(models, ladder, eng.Options())
		s.Install(version(i), pred)
	}
	close(stop)
	wg.Wait()

	if s.Swaps() != 29 {
		t.Fatalf("swaps = %d, want 29", s.Swaps())
	}
	// Every retired version kept its stats.
	all := s.AllStats()
	if len(all) != 29 {
		t.Fatalf("AllStats has %d versions, want 29", len(all))
	}
}

// version formats a test version id the way the store numbers them.
func version(n int) string {
	const digits = "0123456789"
	return "v" + string([]byte{
		digits[n/1000%10], digits[n/100%10], digits[n/10%10], digits[n%10],
	})
}

// TestPredictBatchDuringHotSwap drives the engine's batch path (the
// /predict handler's code path) while versions swap, under -race.
func TestPredictBatchDuringHotSwap(t *testing.T) {
	eng, models := trainSmall(t)
	s := NewServing()
	installVersion(t, s, eng, "v0001", models)

	kernels := engine.TrainingKernels()
	sts := make([]features.Static, 6)
	for i := range sts {
		sts[i] = kernels[i*5].Features
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		ladder := eng.Harness().Device().Sim().Ladder
		for i := 2; i <= 12; i++ {
			s.Install(version(i), engine.NewPredictor(models, ladder, eng.Options()))
		}
	}()
	for i := 0; i < 50; i++ {
		_, pred, _, ok := s.Current()
		if !ok {
			t.Fatal("no predictor mid-swap")
		}
		sets, err := pred.PredictBatch(context.Background(), sts)
		if err != nil {
			t.Fatal(err)
		}
		if len(sets) != len(sts) {
			t.Fatalf("batch returned %d sets, want %d", len(sets), len(sts))
		}
	}
	<-done
}
