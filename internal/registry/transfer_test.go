package registry

import (
	"encoding/json"
	"errors"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/svm"
)

// constSVM builds a support-vector-free model predicting exactly b.
func constSVM(t *testing.T, b float64) *svm.Model {
	t.Helper()
	doc := `{"kernel":{"type":"linear"},"support_vectors":[],"coefs":[],"b":` +
		strconv.FormatFloat(b, 'g', -1, 64) + `}`
	m, err := svm.Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// publishSmall saves the shared small model set for a device and activates
// it, returning the manifest.
func publishSmall(t *testing.T, store *Store, device string) Manifest {
	t.Helper()
	_, models := trainSmall(t)
	man, err := store.Save(device, "", models, Training{SettingsPerKernel: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Activate(device, man.Version); err != nil {
		t.Fatal(err)
	}
	return man
}

func TestExportImportRoundTripBitIdentical(t *testing.T) {
	eng, _ := trainSmall(t)
	src, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	man := publishSmall(t, src, "titanx")

	// Empty version exports the active snapshot.
	doc, err := src.ExportDoc("titanx", "")
	if err != nil {
		t.Fatal(err)
	}

	// Import into a second, memory-mode store (the agent shape).
	dst, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	got, err := dst.ImportDoc(doc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Hash != man.Hash || got.Version != man.Version || got.Device != "titanx" {
		t.Fatalf("imported manifest %+v does not match exported %+v", got, man)
	}

	// The imported snapshot must predict bit-identically to the source.
	ladder := eng.Harness().Device().Sim().Ladder
	srcModels, _, err := src.Load("titanx", man.Version)
	if err != nil {
		t.Fatal(err)
	}
	dstModels, _, err := dst.Load("titanx", man.Version)
	if err != nil {
		t.Fatal(err)
	}
	a := core.NewPredictor(srcModels, ladder).PredictAll(engine.TrainingKernels()[3].Features, ladder.MemClocks())
	b := core.NewPredictor(dstModels, ladder).PredictAll(engine.TrainingKernels()[3].Features, ladder.MemClocks())
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("prediction counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("prediction %d differs after transfer: %+v vs %+v", i, a[i], b[i])
		}
	}

	// Re-import of identical content is an idempotent no-op.
	if _, err := dst.ImportDoc(doc); err != nil {
		t.Fatalf("idempotent re-import failed: %v", err)
	}

	// The imported sequence number advances the local counter, so a later
	// Reserve cannot collide with the imported version.
	v, err := dst.Reserve("titanx")
	if err != nil {
		t.Fatal(err)
	}
	if v <= man.Version {
		t.Fatalf("Reserve after import returned %s, want a version past %s", v, man.Version)
	}
}

func TestImportDocRejectsTampering(t *testing.T) {
	src, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	publishSmall(t, src, "titanx")
	doc, err := src.ExportDoc("titanx", "")
	if err != nil {
		t.Fatal(err)
	}

	// Perturb the models payload (still valid JSON): the content hash no
	// longer matches and the import must fail with ErrCorrupt.
	tampered := strings.Replace(string(doc), `"coefs": [`, `"coefs": [0,`, 1)
	if tampered == string(doc) {
		t.Fatal("tamper marker not found in document")
	}
	dst, _ := Open("")
	if _, err := dst.ImportDoc([]byte(tampered)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("tampered import error = %v, want ErrCorrupt", err)
	}

	// Truncated and non-JSON documents are also ErrCorrupt.
	if _, err := dst.ImportDoc(doc[:len(doc)/2]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated import error = %v, want ErrCorrupt", err)
	}
	if _, err := dst.ImportDoc([]byte("not json")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("garbage import error = %v, want ErrCorrupt", err)
	}
}

func TestImportDocRejectsSchemaMismatch(t *testing.T) {
	src, _ := Open("")
	publishSmall(t, src, "titanx")
	doc, err := src.ExportDoc("titanx", "")
	if err != nil {
		t.Fatal(err)
	}

	// The manifest is not covered by the content hash (the hash covers the
	// models payload), so a schema edit leaves the document "intact" but
	// incompatible — exactly the shape a snapshot from a differently built
	// binary would have.
	var sf map[string]json.RawMessage
	if err := json.Unmarshal(doc, &sf); err != nil {
		t.Fatal(err)
	}
	var man map[string]any
	if err := json.Unmarshal(sf["manifest"], &man); err != nil {
		t.Fatal(err)
	}
	schema := man["schema"].(map[string]any)
	schema["dim"] = schema["dim"].(float64) + 1
	manRaw, _ := json.Marshal(man)
	sf["manifest"] = manRaw
	edited, _ := json.Marshal(sf)

	dst, _ := Open("")
	if _, err := dst.ImportDoc(edited); !errors.Is(err, ErrIncompatible) {
		t.Fatalf("schema-mismatched import error = %v, want ErrIncompatible", err)
	}
}

func TestImportDocRejectsVersionCollision(t *testing.T) {
	src, _ := Open("")
	publishSmall(t, src, "titanx")
	doc, err := src.ExportDoc("titanx", "v0001")
	if err != nil {
		t.Fatal(err)
	}

	// The destination already has a v0001 for titanx with different
	// content (a constant stand-in model set, so the hashes differ).
	other := &core.Models{Speedup: constSVM(t, 2), Energy: constSVM(t, 2)}
	dst, _ := Open("")
	if _, err := dst.Save("titanx", "", other, Training{}); err != nil {
		t.Fatal(err)
	}
	_, err = dst.ImportDoc(doc)
	if err == nil || !strings.Contains(err.Error(), "different content") {
		t.Fatalf("colliding import error = %v, want a different-content error", err)
	}
}

func TestImportDocRejectsBadIdentifiers(t *testing.T) {
	src, _ := Open("")
	publishSmall(t, src, "titanx")
	doc, err := src.ExportDoc("titanx", "")
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []struct{ field, value string }{
		{"device", "../escape"},
		{"device", ""},
		{"version", "ACTIVE"},
	} {
		var sf map[string]json.RawMessage
		if err := json.Unmarshal(doc, &sf); err != nil {
			t.Fatal(err)
		}
		var man map[string]any
		if err := json.Unmarshal(sf["manifest"], &man); err != nil {
			t.Fatal(err)
		}
		man[bad.field] = bad.value
		sf["manifest"], _ = json.Marshal(man)
		edited, _ := json.Marshal(sf)
		dst, _ := Open("")
		if _, err := dst.ImportDoc(edited); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s=%q import error = %v, want ErrCorrupt", bad.field, bad.value, err)
		}
	}
}

func TestDevicesListsStoreContents(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	devices, err := store.Devices()
	if err != nil || len(devices) != 0 {
		t.Fatalf("empty store Devices() = %v, %v", devices, err)
	}
	publishSmall(t, store, "titanx")
	publishSmall(t, store, "p100")
	devices, err = store.Devices()
	if err != nil {
		t.Fatal(err)
	}
	if len(devices) != 2 || devices[0] != "p100" || devices[1] != "titanx" {
		t.Fatalf("Devices() = %v, want [p100 titanx]", devices)
	}
}

func TestNearestPicksClosestCompatibleDonor(t *testing.T) {
	store, _ := Open("")
	publishSmall(t, store, "titanx")
	publishSmall(t, store, "p100")
	manGV := publishSmall(t, store, "gv100")

	dist := func(device string) (float64, bool) {
		switch device {
		case "titanx":
			return 0.5, true
		case "p100":
			return 0.2, true
		case "gv100":
			return 0.1, true
		}
		return 0, false
	}
	device, version, d, err := store.Nearest("v100", dist)
	if err != nil {
		t.Fatal(err)
	}
	if device != "gv100" || version != manGV.Version || d != 0.1 {
		t.Fatalf("Nearest = %s/%s @ %g, want gv100/%s @ 0.1", device, version, d, manGV.Version)
	}

	// The target itself is never a donor; excluded devices (ok=false) are
	// skipped even if closer.
	device, _, _, err = store.Nearest("gv100", dist)
	if err != nil || device != "p100" {
		t.Fatalf("Nearest(gv100) = %s, %v, want p100", device, err)
	}
	onlyFar := func(device string) (float64, bool) { return 0.9, device == "titanx" }
	device, _, _, err = store.Nearest("v100", onlyFar)
	if err != nil || device != "titanx" {
		t.Fatalf("Nearest with exclusions = %s, %v, want titanx", device, err)
	}
}

func TestNearestNoDonorIsExplicit(t *testing.T) {
	store, _ := Open("")
	// Empty fleet: nothing to bootstrap from.
	if _, _, _, err := store.Nearest("p100", func(string) (float64, bool) { return 0, true }); !errors.Is(err, ErrNoDonor) {
		t.Fatalf("empty-store Nearest error = %v, want ErrNoDonor", err)
	}
	// A published but never-activated snapshot is not a donor.
	_, models := trainSmall(t)
	if _, err := store.Save("titanx", "", models, Training{}); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := store.Nearest("p100", func(string) (float64, bool) { return 0, true }); !errors.Is(err, ErrNoDonor) {
		t.Fatalf("inactive-donor Nearest error = %v, want ErrNoDonor", err)
	}
	// The only candidate being the target itself is also no donor.
	if err := store.Activate("titanx", "v0001"); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := store.Nearest("titanx", func(string) (float64, bool) { return 0, true }); !errors.Is(err, ErrNoDonor) {
		t.Fatalf("self-only Nearest error = %v, want ErrNoDonor", err)
	}
}
