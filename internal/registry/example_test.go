package registry_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/registry"
	"repro/internal/svm"
)

// tinyModels trains a minimal model set — enough to snapshot, not enough
// to predict anything useful.
func tinyModels() (*core.Models, error) {
	xs := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	ys := []float64{0.2, 0.4, 0.6, 0.8}
	m, err := svm.Train(xs, ys, svm.Linear{}, svm.Params{C: 1, Epsilon: 0.01})
	if err != nil {
		return nil, err
	}
	return &core.Models{Speedup: m, Energy: m}, nil
}

// ExampleStore shows the snapshot lifecycle: publish a version, activate
// it, and load it back bit-identically — here against the in-memory store
// (pass a directory to Open for the durable, crash-safe variant gpufreqd
// uses).
func ExampleStore() {
	store, err := registry.Open("") // in-memory registry
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	models, err := tinyModels()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	man, err := store.Save("titanx", "", models, registry.Training{Samples: 4})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if err := store.Activate("titanx", man.Version); err != nil {
		fmt.Println("error:", err)
		return
	}
	loaded, loadedMan, err := store.Load("titanx", "") // "" = the active version
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("published %s, active=%v\n", man.Version, func() bool { v, ok := store.Active("titanx"); return ok && v == man.Version }())
	fmt.Printf("loaded %s, hash matches: %v, models intact: %v\n",
		loadedMan.Version, loadedMan.Hash == man.Hash,
		loaded.Speedup.NumSV() == models.Speedup.NumSV())
	// Output:
	// published v0001, active=true
	// loaded v0001, hash matches: true, models intact: true
}

// ExampleStore_Previous shows durable one-step rollback: activating a new
// version records the outgoing one as the rollback target.
func ExampleStore_Previous() {
	store, _ := registry.Open("")
	models, err := tinyModels()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	m1, _ := store.Save("titanx", "", models, registry.Training{})
	m2, _ := store.Save("titanx", "", models, registry.Training{})
	store.Activate("titanx", m1.Version)
	store.Activate("titanx", m2.Version)
	prev, ok := store.Previous("titanx")
	fmt.Printf("active=%s rollback target=%s (%v)\n", m2.Version, prev, ok)
	// Output:
	// active=v0002 rollback target=v0001 (true)
}
