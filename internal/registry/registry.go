// Package registry is the persistence and versioning layer between the
// model internals (internal/svm, internal/core) and the serving layers
// (internal/engine, internal/policy, cmd/gpufreqd): versioned, on-disk
// snapshots of trained model sets, and an in-process hot-swap holder that
// lets a server replace its active predictor and governor without ever
// blocking prediction traffic.
//
// A snapshot is one JSON document per version containing a manifest
// (version id, device, creation time, training metadata, per-model solver
// statistics, the feature schema the models were trained against, and a
// SHA-256 content hash of the serialized models) plus the models
// themselves, serialized by the existing internal/svm persistence code.
// Snapshots are published atomically — written to a temporary file in the
// destination directory, synced, then renamed into place — so a crash
// mid-write can never corrupt a previously published version, and a
// half-written temporary is simply ignored on the next boot.
//
// The Store organizes snapshots per device profile:
//
//	<dir>/
//	  titanx/
//	    v0001.json        one immutable snapshot per version
//	    v0002.json
//	    ACTIVE.json       {"version", "previous", "activated_at"}
//	  p100/
//	    ...
//
// ACTIVE.json is the activation pointer, also written atomically; its
// "previous" field is what makes one-step rollback durable across process
// restarts. A Store opened with an empty directory path keeps everything
// in memory — same API, no files — which is how gpufreqd runs when no
// -model-dir is configured.
package registry

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/freq"
)

// ErrNoSnapshot is returned when the requested version (or any active
// version) does not exist in the store.
var ErrNoSnapshot = errors.New("registry: no such snapshot")

// ErrCorrupt wraps all snapshot-integrity failures: unreadable JSON,
// truncated files, and content-hash mismatches. A corrupt snapshot is
// never partially loaded.
var ErrCorrupt = errors.New("registry: corrupt snapshot")

// Training records how a snapshot's models were produced.
type Training struct {
	// SettingsPerKernel is the number of sampled frequency settings per
	// training micro-benchmark.
	SettingsPerKernel int `json:"settings_per_kernel"`
	// Kernels is the number of training micro-benchmarks.
	Kernels int `json:"kernels"`
	// Samples is the total supervised sample count.
	Samples int `json:"samples"`
	// DurationMS is the wall-clock training time in milliseconds.
	DurationMS float64 `json:"duration_ms"`
	// Observations is how many live observations were folded into the
	// training set (0 for purely synthetic training runs).
	Observations int `json:"observations,omitempty"`
	// SpeedupRMSE and EnergyRMSE are the models' fractional residual RMSEs
	// on their own training set (core.ResidualRMSE) — the drift detector's
	// baseline. Zero in snapshots published before residual recording.
	SpeedupRMSE float64 `json:"speedup_rmse,omitempty"`
	EnergyRMSE  float64 `json:"energy_rmse,omitempty"`
	// WarmStart records that the fit was seeded from a prior snapshot's
	// models instead of starting cold. Nil for cold fits.
	WarmStart *WarmStartInfo `json:"warm_start,omitempty"`
}

// WarmStartInfo records a warm-started training run's seeding provenance in
// the snapshot manifest. The model weights themselves are identical in form
// to a cold fit's — this is metadata about how the solve started, not about
// the solution.
type WarmStartInfo struct {
	// FromVersion is the snapshot version whose models seeded the fit.
	FromVersion string `json:"from_version"`
	// MatchedRows is the total number of prior support vectors re-matched
	// against the new design matrix, summed over both models.
	MatchedRows int `json:"matched_rows"`
}

// ModelInfo is one model's solver statistics, frozen into the manifest.
type ModelInfo struct {
	// SupportVectors is the trained model's support-vector count.
	SupportVectors int `json:"support_vectors"`
	// Iters is the number of SMO iterations the fit performed.
	Iters int `json:"iters"`
	// Converged reports whether the fit reached the KKT tolerance rather
	// than the iteration cap.
	Converged bool `json:"converged"`
}

// Schema pins the feature representation a snapshot's models expect:
// the input dimension, the static feature names, and the frequency
// normalization intervals baked into the combined feature vector. Load
// rejects snapshots whose schema disagrees with the running binary, so a
// model trained against a different feature layout can never be served.
type Schema struct {
	// Dim is the full model input dimension (static features + 2).
	Dim int `json:"dim"`
	// Names lists the static feature names in vector order.
	Names []string `json:"names"`
	// CoreLo/CoreHi and MemLo/MemHi are the [0,1] normalization intervals
	// applied to the core and memory clock features.
	CoreLo freq.MHz `json:"core_lo"`
	CoreHi freq.MHz `json:"core_hi"`
	MemLo  freq.MHz `json:"mem_lo"`
	MemHi  freq.MHz `json:"mem_hi"`
}

// CurrentSchema returns the feature schema of the running binary.
func CurrentSchema() Schema {
	return Schema{
		Dim:    features.Dim,
		Names:  append([]string(nil), features.Names...),
		CoreLo: freq.CoreBounds.Lo,
		CoreHi: freq.CoreBounds.Hi,
		MemLo:  freq.MemBounds.Lo,
		MemHi:  freq.MemBounds.Hi,
	}
}

// Equal reports whether two schemas describe the same feature layout.
func (s Schema) Equal(o Schema) bool {
	if s.Dim != o.Dim || s.CoreLo != o.CoreLo || s.CoreHi != o.CoreHi ||
		s.MemLo != o.MemLo || s.MemHi != o.MemHi || len(s.Names) != len(o.Names) {
		return false
	}
	for i := range s.Names {
		if s.Names[i] != o.Names[i] {
			return false
		}
	}
	return true
}

// Manifest is a snapshot's metadata: everything about a trained model set
// except the model weights themselves.
type Manifest struct {
	// Version is the snapshot's id, unique per device ("v0001", "v0002", …).
	Version string `json:"version"`
	// Device names the GPU profile the models were trained for.
	Device string `json:"device"`
	// CreatedAt is the snapshot's publication time.
	CreatedAt time.Time `json:"created_at"`
	// Hash is the SHA-256 hex digest of the canonical serialized models;
	// Load recomputes and verifies it.
	Hash string `json:"hash"`
	// Training records how the models were produced.
	Training Training `json:"training"`
	// SpeedupModel and EnergyModel freeze the per-model solver statistics.
	SpeedupModel ModelInfo `json:"speedup_model"`
	EnergyModel  ModelInfo `json:"energy_model"`
	// Schema pins the feature representation the models expect.
	Schema Schema `json:"schema"`
	// Fronts summarizes the precomputed per-kernel Pareto fronts, when the
	// snapshot carries them; nil for snapshots published without fronts,
	// which load and serve unchanged (the governor falls back to live
	// sweeps).
	Fronts *FrontsInfo `json:"fronts,omitempty"`
}

// snapshotFile is the on-disk document: manifest, the raw models JSON,
// and (for snapshots published with precomputed fronts) the raw fronts
// table.
type snapshotFile struct {
	Manifest Manifest        `json:"manifest"`
	Models   json.RawMessage `json:"models"`
	Fronts   json.RawMessage `json:"fronts,omitempty"`
}

// ActiveState is a device's activation pointer: which version serving
// should use, which one was active before it (the rollback target), and
// when the switch happened. It is also the on-disk ACTIVE.json format.
type ActiveState struct {
	// Version is the currently active snapshot version.
	Version string `json:"version"`
	// Previous is the version that was active before this one, if any.
	Previous string `json:"previous,omitempty"`
	// ActivatedAt is when the activation was recorded.
	ActivatedAt time.Time `json:"activated_at"`
}

// Entry is one row of a store listing: the manifest, whether the version
// is the device's active one, and a non-empty Err when the snapshot file
// is unreadable or corrupt.
type Entry struct {
	Manifest
	// Active marks the device's currently activated version.
	Active bool `json:"active"`
	// Err describes why the snapshot could not be read, if it could not.
	Err string `json:"error,omitempty"`
}

// versionRe matches snapshot version ids and their file names.
var versionRe = regexp.MustCompile(`^v(\d{4,})$`)

// HashModels returns the SHA-256 hex digest of the canonical (compacted)
// JSON serialization of a model set — the content hash recorded in
// manifests and verified on load.
func HashModels(m *core.Models) (string, error) {
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		return "", err
	}
	return hashRaw(buf.Bytes())
}

// hashRaw compacts raw models JSON and hashes it, so the digest is
// independent of insignificant whitespace introduced by re-encoding.
func hashRaw(raw []byte) (string, error) {
	var compact bytes.Buffer
	if err := json.Compact(&compact, raw); err != nil {
		return "", fmt.Errorf("registry: canonicalizing models: %w", err)
	}
	sum := sha256.Sum256(compact.Bytes())
	return hex.EncodeToString(sum[:]), nil
}

// Store is a versioned snapshot store for one model directory (or, with an
// empty directory, an in-memory store with the same behavior). All methods
// are safe for concurrent use within one process; concurrent writers from
// multiple processes are not coordinated — run one publisher per model
// directory (see docs/OPERATIONS.md).
type Store struct {
	dir string // "" = memory-only

	mu       sync.Mutex
	mem      map[string]map[string][]byte // device -> version -> snapshot doc (memory mode)
	seq      map[string]int               // device -> highest allocated sequence number
	active   map[string]ActiveState       // device -> activation state (memory mode cache)
	manCache map[string]manCacheEntry     // device/version -> verified manifest
}

// manCacheEntry caches one verified manifest so the /models polling hot
// path does not re-read and re-hash every snapshot on every call.
// Snapshots are immutable once published; for the disk-backed store the
// (size, mtime) pair still guards against out-of-band file replacement.
type manCacheEntry struct {
	man   Manifest
	size  int64
	mtime time.Time
}

// Open opens (creating if needed) a snapshot store rooted at dir. An empty
// dir selects the in-memory mode: fully functional versioning with no
// persistence, used when no model directory is configured.
func Open(dir string) (*Store, error) {
	s := &Store{
		dir:      dir,
		mem:      map[string]map[string][]byte{},
		seq:      map[string]int{},
		active:   map[string]ActiveState{},
		manCache: map[string]manCacheEntry{},
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("registry: creating %s: %w", dir, err)
		}
	}
	return s, nil
}

// Dir returns the store's root directory ("" for the in-memory mode).
func (s *Store) Dir() string { return s.dir }

// Persistent reports whether the store writes snapshots to disk.
func (s *Store) Persistent() bool { return s.dir != "" }

// deviceDir returns (creating if needed) the per-device directory.
func (s *Store) deviceDir(device string) (string, error) {
	d := filepath.Join(s.dir, device)
	if err := os.MkdirAll(d, 0o755); err != nil {
		return "", fmt.Errorf("registry: creating %s: %w", d, err)
	}
	return d, nil
}

// versionNum extracts a version id's sequence number (0 if malformed).
func versionNum(v string) int {
	var n int
	fmt.Sscanf(v, "v%d", &n)
	return n
}

// versionsLocked lists the existing version ids for a device, oldest
// first. The sort is numeric, not lexicographic, so ordering survives the
// sequence passing v9999. Caller holds mu.
func (s *Store) versionsLocked(device string) ([]string, error) {
	var out []string
	if !s.Persistent() {
		for v := range s.mem[device] {
			out = append(out, v)
		}
	} else {
		ents, err := os.ReadDir(filepath.Join(s.dir, device))
		if err != nil {
			if os.IsNotExist(err) {
				return nil, nil
			}
			return nil, err
		}
		for _, e := range ents {
			name := strings.TrimSuffix(e.Name(), ".json")
			if strings.HasSuffix(e.Name(), ".json") && versionRe.MatchString(name) {
				out = append(out, name)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return versionNum(out[i]) < versionNum(out[j]) })
	return out, nil
}

// Reserve allocates and returns the device's next version id without
// writing anything. gpufreqd reserves the id when a background training
// run starts, so the id can be returned immediately from POST /train; the
// snapshot is published under it when (and only when) the run succeeds.
func (s *Store) Reserve(device string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seq[device] == 0 {
		versions, err := s.versionsLocked(device)
		if err != nil {
			return "", err
		}
		for _, v := range versions {
			if n := versionNum(v); n > s.seq[device] {
				s.seq[device] = n
			}
		}
	}
	s.seq[device]++
	return fmt.Sprintf("v%04d", s.seq[device]), nil
}

// Save publishes a snapshot of the model set under the given version
// (previously obtained from Reserve; "" reserves one automatically) and
// returns its manifest. Publication is atomic: the document is written to
// a temporary file in the device directory, synced, then renamed into
// place, so readers and crash recovery only ever see complete snapshots.
// Save never activates — call Activate to point serving at the version.
// Snapshots published by Save carry no precomputed fronts; publishers on
// the serving path use SaveWithFronts.
func (s *Store) Save(device, version string, m *core.Models, tr Training) (Manifest, error) {
	return s.SaveWithFronts(device, version, m, tr, nil)
}

// SaveWithFronts is Save plus a publish-time front table: the per-kernel
// ladder sweeps and Pareto sets computed from the model set being
// published (ComputeFronts). The table is serialized into the snapshot
// document and summarized in the manifest with its own content hash, so
// load verifies it exactly like the models. A nil table publishes the
// pre-fronts document layout byte-identically to Save.
func (s *Store) SaveWithFronts(device, version string, m *core.Models, tr Training, fronts *Fronts) (Manifest, error) {
	if version == "" {
		var err error
		if version, err = s.Reserve(device); err != nil {
			return Manifest{}, err
		}
	}
	if !versionRe.MatchString(version) {
		return Manifest{}, fmt.Errorf("registry: invalid version id %q", version)
	}

	var models bytes.Buffer
	if err := m.Save(&models); err != nil {
		return Manifest{}, fmt.Errorf("registry: serializing models: %w", err)
	}
	hash, err := hashRaw(models.Bytes())
	if err != nil {
		return Manifest{}, err
	}
	man := Manifest{
		Version:   version,
		Device:    device,
		CreatedAt: time.Now().UTC(),
		Hash:      hash,
		Training:  tr,
		SpeedupModel: ModelInfo{
			SupportVectors: m.Speedup.NumSV(), Iters: m.Speedup.Iters, Converged: m.Speedup.Converged,
		},
		EnergyModel: ModelInfo{
			SupportVectors: m.Energy.NumSV(), Iters: m.Energy.Iters, Converged: m.Energy.Converged,
		},
		Schema: CurrentSchema(),
	}
	var frontsRaw json.RawMessage
	if fronts != nil {
		doc, fhash, err := encodeFronts(fronts)
		if err != nil {
			return Manifest{}, err
		}
		frontsRaw = doc
		man.Fronts = &FrontsInfo{Kernels: len(fronts.Kernels), Hash: fhash}
	}
	doc, err := json.MarshalIndent(snapshotFile{Manifest: man, Models: models.Bytes(), Fronts: frontsRaw}, "", "  ")
	if err != nil {
		return Manifest{}, fmt.Errorf("registry: encoding snapshot: %w", err)
	}
	doc = append(doc, '\n')

	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.Persistent() {
		if s.mem[device] == nil {
			s.mem[device] = map[string][]byte{}
		}
		if _, exists := s.mem[device][version]; exists {
			return Manifest{}, fmt.Errorf("registry: version %s already exists for %s", version, device)
		}
		s.mem[device][version] = doc
		return man, nil
	}
	devDir, err := s.deviceDir(device)
	if err != nil {
		return Manifest{}, err
	}
	final := filepath.Join(devDir, version+".json")
	if _, err := os.Stat(final); err == nil {
		return Manifest{}, fmt.Errorf("registry: version %s already exists for %s", version, device)
	}
	if err := writeAtomic(final, doc); err != nil {
		return Manifest{}, err
	}
	return man, nil
}

// writeAtomic publishes data at path via a temporary file in the same
// directory, an fsync, and a rename — the crash-safety contract every
// registry write (snapshots and the ACTIVE pointer) relies on.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("registry: creating temporary file in %s: %w", dir, err)
	}
	tmp := f.Name()
	cleanup := func() { f.Close(); os.Remove(tmp) }
	if _, err := f.Write(data); err != nil {
		cleanup()
		return fmt.Errorf("registry: writing %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("registry: syncing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("registry: closing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("registry: publishing %s: %w", path, err)
	}
	return nil
}

// readDoc returns the raw snapshot document for (device, version).
func (s *Store) readDoc(device, version string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.Persistent() {
		doc, ok := s.mem[device][version]
		if !ok {
			return nil, fmt.Errorf("%w: %s/%s", ErrNoSnapshot, device, version)
		}
		return doc, nil
	}
	doc, err := os.ReadFile(filepath.Join(s.dir, device, version+".json"))
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("%w: %s/%s", ErrNoSnapshot, device, version)
	}
	return doc, err
}

// decode parses and integrity-checks a snapshot document.
func decode(device, version string, doc []byte) (snapshotFile, error) {
	var sf snapshotFile
	if err := json.Unmarshal(doc, &sf); err != nil {
		return sf, fmt.Errorf("%w: %s/%s: %v", ErrCorrupt, device, version, err)
	}
	if sf.Manifest.Version != version {
		return sf, fmt.Errorf("%w: %s/%s: manifest claims version %q", ErrCorrupt, device, version, sf.Manifest.Version)
	}
	if len(sf.Models) == 0 {
		return sf, fmt.Errorf("%w: %s/%s: snapshot has no models", ErrCorrupt, device, version)
	}
	hash, err := hashRaw(sf.Models)
	if err != nil {
		return sf, fmt.Errorf("%w: %s/%s: %v", ErrCorrupt, device, version, err)
	}
	if hash != sf.Manifest.Hash {
		return sf, fmt.Errorf("%w: %s/%s: content hash mismatch (manifest %.8s…, computed %.8s…)",
			ErrCorrupt, device, version, sf.Manifest.Hash, hash)
	}
	if _, err := decodeFronts(device, version, sf.Fronts, sf.Manifest.Fronts); err != nil {
		return sf, err
	}
	return sf, nil
}

// Load reads, integrity-checks, and deserializes the snapshot for
// (device, version). An empty version loads the device's active snapshot.
// The returned models predict bit-identically to the set that was saved.
// Corrupt or truncated snapshots are rejected with an error wrapping
// ErrCorrupt; snapshots recorded under a different feature schema are
// rejected as incompatible.
func (s *Store) Load(device, version string) (*core.Models, Manifest, error) {
	m, _, man, err := s.LoadFull(device, version)
	return m, man, err
}

// LoadFull is Load plus the snapshot's precomputed front table. The table
// is nil for snapshots published without fronts (the pre-fronts format),
// which remain fully loadable — callers fall back to live sweeps.
func (s *Store) LoadFull(device, version string) (*core.Models, *Fronts, Manifest, error) {
	if version == "" {
		st, ok := s.ActiveState(device)
		if !ok {
			return nil, nil, Manifest{}, fmt.Errorf("%w: %s has no active version", ErrNoSnapshot, device)
		}
		version = st.Version
	}
	doc, err := s.readDoc(device, version)
	if err != nil {
		return nil, nil, Manifest{}, err
	}
	sf, err := decode(device, version, doc)
	if err != nil {
		return nil, nil, Manifest{}, err
	}
	if !sf.Manifest.Schema.Equal(CurrentSchema()) {
		return nil, nil, Manifest{}, fmt.Errorf("registry: %s/%s: snapshot feature schema is incompatible with this binary",
			device, version)
	}
	m, err := core.Load(bytes.NewReader(sf.Models))
	if err != nil {
		return nil, nil, Manifest{}, fmt.Errorf("%w: %s/%s: %v", ErrCorrupt, device, version, err)
	}
	fronts, err := decodeFronts(device, version, sf.Fronts, sf.Manifest.Fronts)
	if err != nil {
		return nil, nil, Manifest{}, err
	}
	return m, fronts, sf.Manifest, nil
}

// LoadFronts reads, integrity-checks, and returns only the snapshot's
// precomputed front table (nil for pre-fronts snapshots). An empty version
// loads the device's active snapshot. Activation paths use it to hydrate
// the governor without re-deserializing the models they already hold.
func (s *Store) LoadFronts(device, version string) (*Fronts, error) {
	if version == "" {
		st, ok := s.ActiveState(device)
		if !ok {
			return nil, fmt.Errorf("%w: %s has no active version", ErrNoSnapshot, device)
		}
		version = st.Version
	}
	doc, err := s.readDoc(device, version)
	if err != nil {
		return nil, err
	}
	sf, err := decode(device, version, doc)
	if err != nil {
		return nil, err
	}
	return decodeFronts(device, version, sf.Fronts, sf.Manifest.Fronts)
}

// GetManifest reads and integrity-checks one snapshot's manifest. Verified
// manifests are cached (snapshots are immutable; on disk the file's size
// and mtime guard the entry), so status polling does not re-hash every
// snapshot per request. Load always re-verifies the full document.
func (s *Store) GetManifest(device, version string) (Manifest, error) {
	key := device + "/" + version
	var size int64
	var mtime time.Time
	if s.Persistent() {
		fi, err := os.Stat(filepath.Join(s.dir, device, version+".json"))
		if os.IsNotExist(err) {
			return Manifest{}, fmt.Errorf("%w: %s/%s", ErrNoSnapshot, device, version)
		} else if err != nil {
			return Manifest{}, err
		}
		size, mtime = fi.Size(), fi.ModTime()
	}
	s.mu.Lock()
	e, ok := s.manCache[key]
	s.mu.Unlock()
	if ok && (!s.Persistent() || (e.size == size && e.mtime.Equal(mtime))) {
		return e.man, nil
	}

	doc, err := s.readDoc(device, version)
	if err != nil {
		return Manifest{}, err
	}
	sf, err := decode(device, version, doc)
	if err != nil {
		return Manifest{}, err
	}
	s.mu.Lock()
	s.manCache[key] = manCacheEntry{man: sf.Manifest, size: size, mtime: mtime}
	s.mu.Unlock()
	return sf.Manifest, nil
}

// List returns every version recorded for the device, oldest first.
// Unreadable or corrupt snapshots appear with their Err set instead of
// being silently skipped, so operators can spot damage from a listing.
func (s *Store) List(device string) ([]Entry, error) {
	s.mu.Lock()
	versions, err := s.versionsLocked(device)
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	activeVersion := ""
	if st, ok := s.ActiveState(device); ok {
		activeVersion = st.Version
	}
	out := make([]Entry, 0, len(versions))
	for _, v := range versions {
		e := Entry{Active: v == activeVersion}
		man, err := s.GetManifest(device, v)
		if err != nil {
			e.Manifest = Manifest{Version: v, Device: device}
			e.Err = err.Error()
		} else {
			e.Manifest = man
		}
		out = append(out, e)
	}
	return out, nil
}

// FindByHash returns the version id of a snapshot whose content hash
// matches, if any — used to deduplicate imports of externally supplied
// model files.
func (s *Store) FindByHash(device, hash string) (string, bool) {
	entries, err := s.List(device)
	if err != nil {
		return "", false
	}
	for _, e := range entries {
		if e.Err == "" && e.Hash == hash {
			return e.Version, true
		}
	}
	return "", false
}

// activePath returns the ACTIVE pointer path for a device.
func (s *Store) activePath(device string) string {
	return filepath.Join(s.dir, device, "ACTIVE.json")
}

// ActiveState returns the device's current activation state (active and
// previous version) and whether any version is active.
func (s *Store) ActiveState(device string) (ActiveState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.activeStateLocked(device)
}

func (s *Store) activeStateLocked(device string) (ActiveState, bool) {
	if !s.Persistent() {
		st, ok := s.active[device]
		return st, ok && st.Version != ""
	}
	doc, err := os.ReadFile(s.activePath(device))
	if err != nil {
		return ActiveState{}, false
	}
	var af ActiveState
	if err := json.Unmarshal(doc, &af); err != nil || af.Version == "" {
		return ActiveState{}, false
	}
	return af, true
}

// Active returns the device's active version id, if any version is active.
func (s *Store) Active(device string) (string, bool) {
	st, ok := s.ActiveState(device)
	return st.Version, ok
}

// Activate points the device's ACTIVE pointer at the given version,
// recording the outgoing version as "previous" for Rollback. The version
// must exist and pass the integrity check. The pointer write is atomic.
func (s *Store) Activate(device, version string) error {
	if _, err := s.GetManifest(device, version); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, _ := s.activeStateLocked(device)
	af := ActiveState{Version: version, ActivatedAt: time.Now().UTC()}
	if cur.Version != "" && cur.Version != version {
		af.Previous = cur.Version
	} else if cur.Version == version {
		af.Previous = cur.Previous // re-activating is a no-op for history
	}
	return s.writeActiveLocked(device, af)
}

func (s *Store) writeActiveLocked(device string, af ActiveState) error {
	if !s.Persistent() {
		s.active[device] = af
		return nil
	}
	if _, err := s.deviceDir(device); err != nil {
		return err
	}
	doc, err := json.MarshalIndent(af, "", "  ")
	if err != nil {
		return err
	}
	return writeAtomic(s.activePath(device), append(doc, '\n'))
}

// Previous returns the version that was active before the current one —
// the rollback target — if one is recorded. Rollback itself is just
// Activate(Previous): Activate records the outgoing version as the new
// "previous", so a second rollback toggles back.
func (s *Store) Previous(device string) (string, bool) {
	st, ok := s.ActiveState(device)
	if !ok || st.Previous == "" {
		return "", false
	}
	return st.Previous, true
}
