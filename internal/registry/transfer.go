package registry

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
)

// ErrIncompatible marks a snapshot whose feature schema disagrees with the
// running binary: the document is intact (the content hash verifies) but
// its models expect a different input layout, so importing or serving it
// would silently mispredict. Distinct from ErrCorrupt so callers can tell
// "damaged in transit" from "trained by an incompatible build".
var ErrIncompatible = errors.New("registry: incompatible snapshot schema")

// ErrNoDonor is returned by Nearest when no other device has a
// schema-compatible active snapshot to bootstrap from.
var ErrNoDonor = errors.New("registry: no compatible donor model")

// deviceRe constrains device keys that arrive over the wire: they become
// path components of the store directory, so path separators and dot-dot
// must never pass.
var deviceRe = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// validDevice reports whether a wire-supplied device key is safe to use as
// a store path component.
func validDevice(device string) bool {
	return device != "." && device != ".." && deviceRe.MatchString(device)
}

// ExportDoc returns the verified raw snapshot document for
// (device, version) — the push/pull wire format of the fleet layer. An
// empty version exports the device's active snapshot. The returned bytes
// are exactly what ImportDoc on another store accepts, and the embedded
// content hash lets the receiver verify them independently.
func (s *Store) ExportDoc(device, version string) ([]byte, error) {
	if version == "" {
		st, ok := s.ActiveState(device)
		if !ok {
			return nil, fmt.Errorf("%w: %s has no active version", ErrNoSnapshot, device)
		}
		version = st.Version
	}
	doc, err := s.readDoc(device, version)
	if err != nil {
		return nil, err
	}
	if _, err := decode(device, version, doc); err != nil {
		return nil, err
	}
	return doc, nil
}

// ImportDoc verifies a snapshot document produced by ExportDoc on another
// store and publishes it here under its manifest's (device, version),
// byte-for-byte — models, fronts, and manifest survive the transfer
// unchanged, so the importing store serves bit-identically to the
// exporting one. Verification order: the device and version ids must be
// well formed, the content hash must match (ErrCorrupt otherwise), and
// the feature schema must match the running binary (ErrIncompatible).
// Re-importing a version that already exists with the same content hash
// is an idempotent no-op; a version-id collision with different content
// is an error. ImportDoc never activates — callers decide what to serve.
func (s *Store) ImportDoc(doc []byte) (Manifest, error) {
	var sf snapshotFile
	if err := json.Unmarshal(doc, &sf); err != nil {
		return Manifest{}, fmt.Errorf("%w: unreadable document: %v", ErrCorrupt, err)
	}
	man := sf.Manifest
	if !validDevice(man.Device) {
		return Manifest{}, fmt.Errorf("%w: bad device key %q", ErrCorrupt, man.Device)
	}
	if !versionRe.MatchString(man.Version) {
		return Manifest{}, fmt.Errorf("%w: bad version id %q", ErrCorrupt, man.Version)
	}
	if _, err := decode(man.Device, man.Version, doc); err != nil {
		return Manifest{}, err
	}
	if !man.Schema.Equal(CurrentSchema()) {
		return Manifest{}, fmt.Errorf("%w: %s/%s was recorded under a different feature schema",
			ErrIncompatible, man.Device, man.Version)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	// Imported sequence numbers must advance the reservation counter, or a
	// later local Reserve could collide with an imported version.
	if n := versionNum(man.Version); n > s.seq[man.Device] {
		s.seq[man.Device] = n
	}
	if !s.Persistent() {
		if existing, ok := s.mem[man.Device][man.Version]; ok {
			return importCollision(man, existing)
		}
		if s.mem[man.Device] == nil {
			s.mem[man.Device] = map[string][]byte{}
		}
		s.mem[man.Device][man.Version] = append([]byte(nil), doc...)
		return man, nil
	}
	devDir, err := s.deviceDir(man.Device)
	if err != nil {
		return Manifest{}, err
	}
	final := filepath.Join(devDir, man.Version+".json")
	if existing, err := os.ReadFile(final); err == nil {
		return importCollision(man, existing)
	}
	if err := writeAtomic(final, doc); err != nil {
		return Manifest{}, err
	}
	return man, nil
}

// importCollision resolves an import against an existing version: the same
// content hash is an idempotent success, different content is an error.
func importCollision(man Manifest, existing []byte) (Manifest, error) {
	var sf snapshotFile
	if err := json.Unmarshal(existing, &sf); err == nil && sf.Manifest.Hash == man.Hash {
		return man, nil
	}
	return Manifest{}, fmt.Errorf("registry: version %s already exists for %s with different content",
		man.Version, man.Device)
}

// Devices lists the device keys present in the store (devices with at
// least one snapshot directory or in-memory entry), sorted.
func (s *Store) Devices() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	if !s.Persistent() {
		for d := range s.mem {
			out = append(out, d)
		}
	} else {
		ents, err := os.ReadDir(s.dir)
		if err != nil {
			if os.IsNotExist(err) {
				return nil, nil
			}
			return nil, err
		}
		for _, e := range ents {
			if e.IsDir() && validDevice(e.Name()) {
				out = append(out, e.Name())
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// Nearest picks the donor for a cross-device bootstrap: among all devices
// other than target that have a schema-compatible active snapshot, the one
// whose profile distance (as reported by dist; ok=false excludes a device)
// is smallest, ties broken by device name for determinism. It returns the
// donor's device key, active version, and distance, or an error wrapping
// ErrNoDonor when no device qualifies — callers surface that explicitly
// rather than falling back to a cold fit.
func (s *Store) Nearest(target string, dist func(device string) (float64, bool)) (device, version string, d float64, err error) {
	devices, err := s.Devices()
	if err != nil {
		return "", "", 0, err
	}
	cur := CurrentSchema()
	found := false
	for _, dev := range devices {
		if dev == target {
			continue
		}
		st, ok := s.ActiveState(dev)
		if !ok {
			continue
		}
		man, err := s.GetManifest(dev, st.Version)
		if err != nil || !man.Schema.Equal(cur) {
			continue
		}
		dd, ok := dist(dev)
		if !ok {
			continue
		}
		if !found || dd < d || (dd == d && dev < device) {
			found = true
			device, version, d = dev, st.Version, dd
		}
	}
	if !found {
		return "", "", 0, fmt.Errorf("%w for %s", ErrNoDonor, target)
	}
	return device, version, d, nil
}
