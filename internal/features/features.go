// Package features builds the paper's feature representation: a ten-element
// static code feature vector extracted from an OpenCL kernel, each component
// normalized over the total instruction count, optionally extended with a
// normalized (core, memory) frequency pair to form the 12-dimensional vector
// the models are trained on (Section 3.2 of the paper).
package features

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/clkernel"
	"repro/internal/freq"
)

// StaticDim is the number of static code features (the paper's k vector).
const StaticDim = clkernel.NumFeatureClasses

// Dim is the full model feature dimension: static features plus the
// normalized core and memory frequencies.
const Dim = StaticDim + 2

// Names lists the static feature names in vector order, matching the
// paper's definition: (int_add, int_mul, int_div, int_bw, float_add,
// float_mul, float_div, sf, gl_access, loc_access).
var Names = []string{
	"int_add", "int_mul", "int_div", "int_bw",
	"float_add", "float_mul", "float_div", "sf",
	"gl_access", "loc_access",
}

// Static is the per-kernel static feature vector: instruction-class shares
// of the total static instruction count. Components sum to at most 1 (the
// remainder is the "other" class excluded from the features but included in
// the normalization denominator).
type Static [StaticDim]float64

// FromCounts converts instruction-class counts to the normalized static
// feature vector. The denominator is the total instruction count including
// the non-feature "other" class, so two codes with the same arithmetic
// intensity but different total sizes map to the same features.
func FromCounts(c clkernel.Counts) Static {
	var s Static
	total := c.Total()
	if total <= 0 {
		return s
	}
	for i := 0; i < StaticDim; i++ {
		s[i] = c.Ops[i] / total
	}
	return s
}

// Extract parses nothing: it counts the given kernel function statically
// (each source instruction once, like the paper's LLVM pass) and normalizes.
func Extract(fn *clkernel.Function, prog *clkernel.Program) Static {
	return FromCounts(clkernel.Count(fn, prog, clkernel.Static))
}

// ExtractSource parses src and extracts static features of its first kernel
// (or the named kernel if name is non-empty).
func ExtractSource(src, name string) (Static, error) {
	prog, err := clkernel.Parse(src)
	if err != nil {
		return Static{}, err
	}
	k := prog.Kernels[0]
	if name != "" {
		k = prog.Kernel(name)
		if k == nil {
			return Static{}, fmt.Errorf("features: kernel %q not found", name)
		}
	}
	return Extract(k, prog), nil
}

// Sum returns the sum of the feature components (the share of counted
// instructions that fall into the ten feature classes).
func (s Static) Sum() float64 {
	t := 0.0
	for _, v := range s {
		t += v
	}
	return t
}

// Valid reports whether every component is finite and within [0, 1] and the
// component sum does not exceed 1 (modulo rounding).
func (s Static) Valid() bool {
	for _, v := range s {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 1 {
			return false
		}
	}
	return s.Sum() <= 1+1e-9
}

// String formats the vector with feature names for diagnostics.
func (s Static) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, v := range s {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%.3f", Names[i], v)
	}
	b.WriteByte('}')
	return b.String()
}

// Vector is the full 12-dimensional model input: static features followed
// by normalized core and memory frequency.
type Vector [Dim]float64

// Combine appends the normalized frequency configuration to the static
// features, producing the model input vector w = (k, f).
func Combine(s Static, cfg freq.Config) Vector {
	var v Vector
	copy(v[:StaticDim], s[:])
	core, mem := cfg.Normalized()
	v[StaticDim] = core
	v[StaticDim+1] = mem
	return v
}

// Slice returns the vector as a []float64 (a copy).
func (v Vector) Slice() []float64 { return append([]float64(nil), v[:]...) }

// Distance returns the Euclidean distance between two vectors.
func Distance(a, b Vector) float64 {
	d := 0.0
	for i := range a {
		diff := a[i] - b[i]
		d += diff * diff
	}
	return math.Sqrt(d)
}
