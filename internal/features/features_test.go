package features

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/clkernel"
	"repro/internal/freq"
)

const vecAdd = `
__kernel void add(__global const float* a, __global const float* b,
                  __global float* out, int n) {
    int i = get_global_id(0);
    if (i < n) {
        out[i] = a[i] + b[i];
    }
}`

func TestExtractSource(t *testing.T) {
	s, err := ExtractSource(vecAdd, "")
	if err != nil {
		t.Fatalf("ExtractSource: %v", err)
	}
	if !s.Valid() {
		t.Fatalf("invalid feature vector %v", s)
	}
	// vecAdd does: get_global_id (other), compare (other), 2 loads + 1
	// store (global), 1 float add. Global accesses must dominate.
	iGl := indexOf(t, "gl_access")
	iFA := indexOf(t, "float_add")
	if s[iGl] <= s[iFA] {
		t.Errorf("gl_access share %v <= float_add share %v", s[iGl], s[iFA])
	}
	if s[iGl] <= 0 {
		t.Errorf("gl_access share = %v, want > 0", s[iGl])
	}
}

func TestExtractNamedKernel(t *testing.T) {
	src := vecAdd + `
__kernel void heavy(__global float* o, float x) {
    float a = x;
    for (int i = 0; i < 64; i++) { a = a * x + 1.0f; }
    o[0] = a;
}`
	s1, err := ExtractSource(src, "add")
	if err != nil {
		t.Fatalf("ExtractSource(add): %v", err)
	}
	s2, err := ExtractSource(src, "heavy")
	if err != nil {
		t.Fatalf("ExtractSource(heavy): %v", err)
	}
	if s1 == s2 {
		t.Error("different kernels produced identical features")
	}
	if _, err := ExtractSource(src, "nope"); err == nil {
		t.Error("expected error for missing kernel name")
	}
	if _, err := ExtractSource("not valid", ""); err == nil {
		t.Error("expected parse error")
	}
}

func TestNormalizationInvariance(t *testing.T) {
	// Codes with identical arithmetic intensity but different total size
	// must have the same feature representation (paper, Section 3.2).
	small := `__kernel void k(__global float* o, float x) {
	    float a = x * x;
	    float b = a + x;
	    o[0] = b;
	}`
	big := `__kernel void k(__global float* o, float x) {
	    float a = x * x;
	    float b = a + x;
	    float c = b * b;
	    float d = c + b;
	    o[0] = d;
	    o[1] = b;
	}`
	s1, err := ExtractSource(small, "")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ExtractSource(big, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := range s1 {
		if math.Abs(s1[i]-s2[i]) > 1e-12 {
			t.Errorf("feature %s differs: %v vs %v", Names[i], s1[i], s2[i])
		}
	}
}

func TestFromCountsZero(t *testing.T) {
	var c clkernel.Counts
	s := FromCounts(c)
	if s.Sum() != 0 {
		t.Errorf("zero counts produced nonzero features %v", s)
	}
	if !s.Valid() {
		t.Error("zero vector should be valid")
	}
}

func TestCombine(t *testing.T) {
	s, err := ExtractSource(vecAdd, "")
	if err != nil {
		t.Fatal(err)
	}
	cfg := freq.Config{Mem: 3505, Core: 1189}
	v := Combine(s, cfg)
	for i := 0; i < StaticDim; i++ {
		if v[i] != s[i] {
			t.Errorf("static part mismatch at %d", i)
		}
	}
	if v[StaticDim] != 1.0 {
		t.Errorf("core feature = %v, want 1.0", v[StaticDim])
	}
	if v[StaticDim+1] != 1.0 {
		t.Errorf("mem feature = %v, want 1.0", v[StaticDim+1])
	}
	lo := Combine(s, freq.Config{Mem: 405, Core: 135})
	if lo[StaticDim] != 0 || lo[StaticDim+1] != 0 {
		t.Errorf("lowest config features = (%v, %v), want (0, 0)", lo[StaticDim], lo[StaticDim+1])
	}
}

func TestDistance(t *testing.T) {
	var a, b Vector
	if Distance(a, b) != 0 {
		t.Error("distance of identical vectors != 0")
	}
	b[0] = 3
	b[1] = 4
	if got := Distance(a, b); math.Abs(got-5) > 1e-12 {
		t.Errorf("Distance = %v, want 5", got)
	}
}

func TestDistanceSymmetryProperty(t *testing.T) {
	f := func(raw [2 * Dim]float64) bool {
		var a, b Vector
		copy(a[:], raw[:Dim])
		copy(b[:], raw[Dim:])
		for i := range a {
			if math.IsNaN(a[i]) || math.IsInf(a[i], 0) ||
				math.IsNaN(b[i]) || math.IsInf(b[i], 0) {
				return true // skip pathological inputs
			}
			// quick may generate enormous floats whose squares overflow.
			if math.Abs(a[i]) > 1e100 || math.Abs(b[i]) > 1e100 {
				return true
			}
		}
		d1, d2 := Distance(a, b), Distance(b, a)
		return d1 == d2 && d1 >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValidRejectsBad(t *testing.T) {
	var s Static
	s[0] = math.NaN()
	if s.Valid() {
		t.Error("NaN accepted")
	}
	s[0] = -0.1
	if s.Valid() {
		t.Error("negative accepted")
	}
	s[0] = 1.5
	if s.Valid() {
		t.Error(">1 accepted")
	}
}

func TestStringIncludesNames(t *testing.T) {
	s, err := ExtractSource(vecAdd, "")
	if err != nil {
		t.Fatal(err)
	}
	str := s.String()
	for _, n := range Names {
		if !containsStr(str, n) {
			t.Errorf("String() missing feature name %q: %s", n, str)
		}
	}
}

func TestSliceCopies(t *testing.T) {
	var v Vector
	v[0] = 1
	sl := v.Slice()
	sl[0] = 99
	if v[0] != 1 {
		t.Error("Slice() did not copy")
	}
	if len(sl) != Dim {
		t.Errorf("len(Slice()) = %d, want %d", len(sl), Dim)
	}
}

func indexOf(t *testing.T, name string) int {
	t.Helper()
	for i, n := range Names {
		if n == name {
			return i
		}
	}
	t.Fatalf("no feature named %q", name)
	return -1
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
