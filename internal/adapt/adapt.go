// Package adapt closes the loop between serving and training: it ingests
// measured production observations, detects when the active model's
// prediction error has drifted away from its training-time residuals, and
// retrains in the background — folding the observations into the training
// set, snapshotting the candidate through the model registry, and
// hot-swapping serving to it only after the candidate proves itself on a
// held-out slice of the very observations that triggered the retrain.
//
// The paper trains its models once, offline; the ROADMAP's production
// framing makes that a liability — workloads shift, and a frozen model
// degrades silently because prediction needs no ground truth. This package
// is the missing feedback path: gpufreqd's POST /observe feeds the bounded
// observation store, the drift detector compares the rolling error on
// those observations against the residuals recorded in the active
// snapshot's manifest, and the retrain guardrails (cooldown, minimum
// sample count, holdout check) make the loop safe to leave running
// unattended. GET /adapt/status exposes every number the loop acts on;
// POST /adapt/retrain forces an immediate, still-holdout-guarded retrain.
package adapt

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/registry"
)

// Defaults applied by Config.withDefaults.
const (
	// DefaultCapacity bounds the observation store.
	DefaultCapacity = 1024
	// DefaultWindow is the rolling-error window size.
	DefaultWindow = 64
	// DefaultMinSamples gates drift detection until enough observations
	// arrived to make the rolling error meaningful.
	DefaultMinSamples = 32
	// DefaultDriftFactor triggers a retrain when the rolling RMSE exceeds
	// this multiple of the training-time residual baseline.
	DefaultDriftFactor = 2.0
	// DefaultBaselineFloor is the minimum residual baseline, guarding
	// against snapshots with no (or implausibly small) recorded residuals.
	DefaultBaselineFloor = 0.02
	// DefaultCooldown is the minimum spacing between automatic retrains.
	DefaultCooldown = 2 * time.Minute
	// DefaultHoldoutEvery holds out every n-th observation from the
	// fold-in set for the candidate-vs-active check (4 = 25% holdout).
	DefaultHoldoutEvery = 4
	// DefaultHoldoutMargin is the factor by which the candidate's holdout
	// error may exceed the active model's before it is rejected (1 = the
	// candidate must be no worse).
	DefaultHoldoutMargin = 1.0
	// DefaultObservationWeight replicates each folded-in observation this
	// many times in the training set, so a handful of live samples is not
	// drowned out by the thousands of synthetic ones.
	DefaultObservationWeight = 3
)

// ErrRetrainInProgress is returned by Retrain when another retrain (manual
// or automatic) is already running.
var ErrRetrainInProgress = errors.New("adapt: a retrain is already in progress")

// ErrNoModel is returned when the loop is asked to act before any model
// version is serving.
var ErrNoModel = errors.New("adapt: no active model version")

// Config tunes the adaptation loop. Zero values select the documented
// defaults; the drift thresholds and their operational tuning are covered
// in docs/OPERATIONS.md.
type Config struct {
	// Auto enables automatic retraining on drift and on the sample-count /
	// age policies. With Auto false the loop still ingests observations
	// and reports drift, but only POST /adapt/retrain (or Retrain) acts.
	Auto bool `json:"auto"`
	// Capacity bounds the observation store in samples (default 1024).
	Capacity int `json:"capacity"`
	// Window is the rolling window in samples (default 64, clamped to
	// Capacity). It is both the drift evidence and the retrain corpus:
	// drift is judged on the window's rolling error, and a retrain folds
	// exactly the window's observations into the training set — recent
	// samples describe the current regime; older ones (up to Capacity)
	// are retained for inspection only.
	Window int `json:"window"`
	// MinSamples gates drift detection (default 32, clamped to Window).
	MinSamples int `json:"min_samples"`
	// DriftFactor scales the residual baseline into the drift threshold
	// (default 2.0).
	DriftFactor float64 `json:"drift_factor"`
	// BaselineFloor is the minimum residual baseline (default 0.02).
	BaselineFloor float64 `json:"baseline_floor"`
	// BaselineSpeedup and BaselineEnergy override the baseline entirely
	// (0 = derive from the active snapshot's recorded residuals).
	BaselineSpeedup float64 `json:"baseline_speedup,omitempty"`
	BaselineEnergy  float64 `json:"baseline_energy,omitempty"`
	// Cooldown is the minimum spacing between automatic retrains (default
	// 2m; manual retrains ignore it).
	Cooldown time.Duration `json:"cooldown"`
	// CooldownObs additionally requires this many observations to have
	// been ingested since the last retrain before another automatic one
	// may start (0 = disabled). Useful when observation rate, not wall
	// clock, is the natural pacing unit.
	CooldownObs int `json:"cooldown_obs,omitempty"`
	// RetrainEvery triggers an automatic retrain after this many ingested
	// observations regardless of drift (0 = disabled).
	RetrainEvery int `json:"retrain_every,omitempty"`
	// MaxModelAge triggers an automatic retrain when the active snapshot
	// is older than this (0 = disabled; checked on ingest).
	MaxModelAge time.Duration `json:"max_model_age,omitempty"`
	// HoldoutEvery holds out every n-th observation for the candidate
	// check (default 4; 1 would hold out everything, so values < 2 are
	// clamped to the default).
	HoldoutEvery int `json:"holdout_every"`
	// HoldoutMargin is the candidate-vs-active tolerance (default 1.0:
	// the candidate must be no worse on the holdout).
	HoldoutMargin float64 `json:"holdout_margin"`
	// ObservationWeight replicates folded-in observations (default 3).
	ObservationWeight int `json:"observation_weight"`
	// DisableWarmStart forces every retrain to fit from scratch instead of
	// seeding the solver from the active model's solution. Warm starts are
	// on by default: automatic retrains (drift, sample-count, age) reuse
	// the active models' support-vector state and converge orders of
	// magnitude faster on the mostly-unchanged corpus. Manual retrains are
	// always cold — they exist to escape a bad model, so they must not
	// inherit its state.
	DisableWarmStart bool `json:"disable_warm_start,omitempty"`
	// Sync runs triggered retrains inline in Observe instead of in a
	// background goroutine — used by the experiments and tests, where the
	// deterministic ordering matters; servers leave it false.
	Sync bool `json:"-"`
}

// withDefaults resolves zero values to the documented defaults.
func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = DefaultCapacity
	}
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.Window > c.Capacity {
		c.Window = c.Capacity
	}
	if c.MinSamples <= 0 {
		c.MinSamples = DefaultMinSamples
	}
	if c.MinSamples > c.Window {
		c.MinSamples = c.Window
	}
	if c.DriftFactor <= 0 {
		c.DriftFactor = DefaultDriftFactor
	}
	if c.BaselineFloor <= 0 {
		c.BaselineFloor = DefaultBaselineFloor
	}
	if c.Cooldown <= 0 {
		c.Cooldown = DefaultCooldown
	}
	if c.HoldoutEvery < 2 {
		c.HoldoutEvery = DefaultHoldoutEvery
	}
	if c.HoldoutMargin <= 0 {
		c.HoldoutMargin = DefaultHoldoutMargin
	}
	if c.ObservationWeight <= 0 {
		c.ObservationWeight = DefaultObservationWeight
	}
	return c
}

// Deps wires the controller to the serving stack it adapts. Every field is
// required.
type Deps struct {
	// Device names the GPU profile the loop serves (registry key).
	Device string
	// Store is the snapshot registry candidates are published to.
	Store *registry.Store
	// Current returns the serving predictor and its version (ok false
	// before any install) — gpufreqd adapts registry.Serving.Current.
	Current func() (*engine.Predictor, string, bool)
	// Install activates a published version and hot-swaps serving to it —
	// gpufreqd passes its activate-and-install step.
	Install func(version string, m *core.Models) error
	// Trainer produces candidate models from base corpus + observations.
	Trainer Trainer
	// Fronts optionally computes the publish-time front table for a
	// candidate model set, so adapt-published snapshots serve /select from
	// the table like training-published ones — gpufreqd passes
	// registry.ComputeFronts over the training kernels. Nil publishes
	// candidates without fronts.
	Fronts func(m *core.Models) *registry.Fronts
	// WAL optionally makes the observation store durable: every ingested
	// observation is appended to the log, and New seeds the store from the
	// log's recovered window so a daemon restart resumes the drift window
	// bit-identically instead of re-accumulating it. Nil keeps the store
	// memory-only (the pre-`-obs-dir` behaviour).
	WAL *WAL
}

// Outcomes recorded in RetrainState.LastOutcome.
const (
	// OutcomeActivated marks a retrain whose candidate passed the holdout
	// check and was hot-swapped into serving.
	OutcomeActivated = "activated"
	// OutcomeRejected marks a retrain whose candidate failed the holdout
	// check; the snapshot is published for inspection but never activated.
	OutcomeRejected = "rejected-holdout"
	// OutcomeFailed marks a retrain that errored before producing a
	// candidate.
	OutcomeFailed = "failed"
)

// Trigger-reason prefixes. trigger() builds its reasons from these; the
// warm-start decision keys on them, so automatic retrains (whose corpus is
// the active model's corpus plus a small window of new observations) seed
// from the active solution while manual retrains always start cold.
const (
	reasonDriftPrefix  = "drift: "
	reasonSamplePrefix = "sample-count policy: "
	reasonAgePrefix    = "age policy: "
)

// warmEligible reports whether a retrain trigger may seed from the active
// models. Only the automatic policies qualify; anything else — manual
// retrains, API-forced retrains — fits cold.
func warmEligible(reason string) bool {
	return strings.HasPrefix(reason, reasonDriftPrefix) ||
		strings.HasPrefix(reason, reasonSamplePrefix) ||
		strings.HasPrefix(reason, reasonAgePrefix)
}

// WarmStartReport records how the last retrain's fit was seeded, for
// /adapt/status. Used false with an empty Fallback means warm starting was
// never considered (no retrain yet).
type WarmStartReport struct {
	// Used reports whether the fit was seeded from the active models.
	Used bool `json:"used"`
	// FromVersion is the active snapshot version that seeded the fit.
	FromVersion string `json:"from_version,omitempty"`
	// MatchedRows is the number of prior support vectors re-matched
	// against the new training matrix, summed over both models.
	MatchedRows int `json:"matched_rows,omitempty"`
	// Fallback names why the retrain fitted cold instead ("" when warm).
	Fallback string `json:"fallback,omitempty"`
}

// HoldoutReport records the candidate-vs-active comparison of one retrain.
type HoldoutReport struct {
	// Samples is the number of held-out observations compared on.
	Samples int `json:"samples"`
	// CandidateRMSE and ActiveRMSE pool both objectives' errors on the
	// holdout into one fractional RMSE each.
	CandidateRMSE float64 `json:"candidate_rmse"`
	ActiveRMSE    float64 `json:"active_rmse"`
	// Margin is the configured tolerance the comparison used.
	Margin float64 `json:"margin"`
	// Passed reports whether the candidate was allowed to activate.
	Passed bool `json:"passed"`
}

// RetrainState summarizes the loop's retraining history for /adapt/status.
type RetrainState struct {
	// InProgress reports whether a retrain is currently running.
	InProgress bool `json:"in_progress"`
	// Retrains counts completed retrains (any outcome); Activated and
	// Rejected split them by holdout verdict.
	Retrains  int `json:"retrains"`
	Activated int `json:"activated"`
	Rejected  int `json:"rejected"`
	// LastOutcome is OutcomeActivated, OutcomeRejected or OutcomeFailed
	// ("" before the first retrain); LastError carries the failure text.
	LastOutcome string `json:"last_outcome,omitempty"`
	LastError   string `json:"last_error,omitempty"`
	// LastVersion is the registry version the last retrain published.
	LastVersion string `json:"last_version,omitempty"`
	// LastReason records what triggered the last retrain.
	LastReason string `json:"last_reason,omitempty"`
	// LastAt is when the last retrain finished.
	LastAt time.Time `json:"last_at,omitempty"`
	// LastHoldout is the last retrain's holdout comparison.
	LastHoldout *HoldoutReport `json:"last_holdout,omitempty"`
	// LastWarmStart records how the last retrain's fit was seeded.
	LastWarmStart *WarmStartReport `json:"last_warm_start,omitempty"`
	// CooldownUntil is when the next automatic retrain may start.
	CooldownUntil time.Time `json:"cooldown_until,omitempty"`
}

// Status is the full adaptation-loop snapshot behind GET /adapt/status.
type Status struct {
	// Auto reports whether automatic retraining is enabled.
	Auto bool `json:"auto"`
	// ModelVersion is the serving version the loop evaluates against.
	ModelVersion string `json:"model_version,omitempty"`
	// Store is the observation store's accounting.
	Store StoreStats `json:"store"`
	// Drift is the detector's current verdict.
	Drift DriftStatus `json:"drift"`
	// Retrain is the retraining history and in-flight state.
	Retrain RetrainState `json:"retrain"`
	// WAL is the durable log's accounting (absent when the store is
	// memory-only).
	WAL *WALStats `json:"wal,omitempty"`
	// Config echoes the resolved loop configuration.
	Config Config `json:"config"`
}

// IngestResult reports what one Observe call did.
type IngestResult struct {
	// Stored reports whether the observation passed validation.
	Stored bool `json:"stored"`
	// Drift is the detector's verdict after the ingest.
	Drift DriftStatus `json:"drift"`
	// RetrainStarted reports whether this ingest triggered a retrain.
	RetrainStarted bool `json:"retrain_started"`
	// Reason names the trigger when RetrainStarted is true.
	Reason string `json:"reason,omitempty"`
}

// Controller runs the adaptation loop for one serving stack. All methods
// are safe for concurrent use.
type Controller struct {
	cfg  Config
	deps Deps
	obs  *store

	retrainMu sync.Mutex // held for a retrain's whole duration

	mu            sync.Mutex // guards the fields below
	state         RetrainState
	sinceRetrain  int       // observations ingested since the last retrain
	lastAutoStart time.Time // cooldown anchor
}

// New builds a controller; zero Config fields select the defaults. When
// Deps.WAL is set, the store is seeded from the log's recovered window —
// stats, drift baseline and node attribution resume exactly where the
// previous process stopped.
func New(cfg Config, deps Deps) *Controller {
	cfg = cfg.withDefaults()
	c := &Controller{cfg: cfg, deps: deps, obs: newStore(cfg.Capacity)}
	if deps.WAL != nil {
		c.obs.restore(deps.WAL.Recovered())
	}
	return c
}

// Config returns the resolved loop configuration.
func (c *Controller) Config() Config { return c.cfg }

// Observe validates and ingests one observation, re-evaluates drift, and —
// when automatic retraining is enabled — starts a guarded retrain if a
// trigger fires. Invalid observations are rejected with an error and never
// enter the store.
func (c *Controller) Observe(o Observation) (IngestResult, error) {
	if err := o.Validate(); err != nil {
		return IngestResult{}, err
	}
	pred, _, ok := c.deps.Current()
	if !ok {
		return IngestResult{}, ErrNoModel
	}
	o.At = time.Now().UTC()
	c.obs.add(o)
	if c.deps.WAL != nil {
		// A log failure degrades durability, not serving: the in-memory
		// ingest stands and the error is visible in Status().WAL.
		_ = c.deps.WAL.Append(o)
	}
	c.mu.Lock()
	c.sinceRetrain++
	c.mu.Unlock()

	res := IngestResult{Stored: true, Drift: c.detect(pred, c.obs.tail(c.cfg.Window))}
	if !c.cfg.Auto {
		return res, nil
	}
	reason, ok := c.trigger(res.Drift)
	if !ok {
		return res, nil
	}
	res.Reason = reason
	if c.cfg.Sync {
		_, err := c.Retrain(context.Background(), reason)
		res.RetrainStarted = !errors.Is(err, ErrRetrainInProgress)
		if res.RetrainStarted {
			c.commitCooldown()
			if err != nil {
				// The retrain ran and failed; the failure is recorded in
				// the status history, not surfaced as an ingest error.
				res.Reason = reason + ": " + err.Error()
			}
		}
		return res, nil
	}
	if res.RetrainStarted = c.StartRetrain(reason) == nil; res.RetrainStarted {
		c.commitCooldown()
	}
	return res, nil
}

// commitCooldown anchors the cooldowns at an automatic retrain's actual
// start. It is deliberately not part of trigger(): a trigger that loses
// the race to an already-running retrain must not consume the cooldown,
// or the drift it proved could go unactioned for a whole extra period.
func (c *Controller) commitCooldown() {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	c.lastAutoStart = now
	c.state.CooldownUntil = now.Add(c.cfg.Cooldown)
}

// StartRetrain launches one guarded retrain in a background goroutine,
// returning ErrRetrainInProgress when another retrain already holds the
// lock. The outcome lands in the status history (Status().Retrain).
func (c *Controller) StartRetrain(reason string) error {
	if !c.retrainMu.TryLock() {
		return ErrRetrainInProgress
	}
	go func() {
		defer c.retrainMu.Unlock()
		c.retrainLocked(context.Background(), reason)
	}()
	return nil
}

// trigger decides whether an automatic retrain should start now and names
// the policy that fired. The cooldown applies to every automatic trigger.
func (c *Controller) trigger(drift DriftStatus) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	if !c.lastAutoStart.IsZero() && now.Sub(c.lastAutoStart) < c.cfg.Cooldown {
		return "", false
	}
	if c.cfg.CooldownObs > 0 && c.state.Retrains > 0 && c.sinceRetrain < c.cfg.CooldownObs {
		return "", false
	}
	if drift.Drift {
		return reasonDriftPrefix + drift.Reason, true
	}
	if c.cfg.RetrainEvery > 0 && c.sinceRetrain >= c.cfg.RetrainEvery {
		return fmt.Sprintf("%s%d observations since last retrain", reasonSamplePrefix, c.sinceRetrain), true
	}
	if c.cfg.MaxModelAge > 0 {
		if age, ok := c.modelAge(now); ok && age > c.cfg.MaxModelAge {
			return fmt.Sprintf("%sactive model is %s old", reasonAgePrefix, age.Round(time.Second)), true
		}
	}
	return "", false
}

// modelAge returns how long ago the active snapshot was created. Caller
// holds mu (the manifest read does not take it).
func (c *Controller) modelAge(now time.Time) (time.Duration, bool) {
	_, version, ok := c.deps.Current()
	if !ok {
		return 0, false
	}
	man, err := c.deps.Store.GetManifest(c.deps.Device, version)
	if err != nil || man.CreatedAt.IsZero() {
		return 0, false
	}
	return now.Sub(man.CreatedAt), true
}

// Retrain runs one guarded retrain synchronously: fold the stored
// observations into the training set, fit a candidate, publish it to the
// registry, and activate it only if it passes the holdout check. It is the
// shared body of every trigger and of POST /adapt/retrain; manual calls
// ignore the cooldown and the drift gate but never the holdout guard.
// ErrRetrainInProgress is returned when another retrain holds the lock.
func (c *Controller) Retrain(ctx context.Context, reason string) (RetrainState, error) {
	if !c.retrainMu.TryLock() {
		return c.snapshotState(), ErrRetrainInProgress
	}
	defer c.retrainMu.Unlock()
	return c.retrainLocked(ctx, reason)
}

// retrainLocked is the retrain body; caller holds retrainMu.
func (c *Controller) retrainLocked(ctx context.Context, reason string) (RetrainState, error) {
	c.mu.Lock()
	c.state.InProgress = true
	c.state.LastReason = reason
	c.mu.Unlock()

	st, err := c.runRetrain(ctx, reason)

	c.mu.Lock()
	// CooldownUntil may have been committed by the triggering Observe
	// while this retrain ran; the completion write must not clobber it
	// with the stale value snapshotted at retrain start.
	st.CooldownUntil = c.state.CooldownUntil
	c.state = st
	c.state.InProgress = false
	c.sinceRetrain = 0
	c.mu.Unlock()
	return st, err
}

// runRetrain performs the fit/publish/holdout/activate sequence and
// returns the updated history entry.
func (c *Controller) runRetrain(ctx context.Context, reason string) (RetrainState, error) {
	st := c.snapshotState()
	finish := func(outcome, version string, hr *HoldoutReport, err error) (RetrainState, error) {
		st.Retrains++
		st.LastOutcome = outcome
		st.LastVersion = version
		st.LastReason = reason
		st.LastAt = time.Now().UTC()
		st.LastHoldout = hr
		st.LastError = ""
		if err != nil {
			st.LastError = err.Error()
		}
		switch outcome {
		case OutcomeActivated:
			st.Activated++
		case OutcomeRejected:
			st.Rejected++
		}
		return st, err
	}

	pred, activeVersion, ok := c.deps.Current()
	if !ok {
		return finish(OutcomeFailed, "", nil, ErrNoModel)
	}
	// The rolling window is the retrain corpus: it is the evidence the
	// drift verdict was reached on, and it describes the current regime —
	// observations older than the window may predate a workload shift and
	// would teach the candidate the very behaviour being drifted from.
	foldIn, holdout := c.split(c.obs.tail(c.cfg.Window))
	samples := make([]core.Sample, 0, len(foldIn)*c.cfg.ObservationWeight)
	for _, o := range foldIn {
		s := o.Sample()
		for i := 0; i < c.cfg.ObservationWeight; i++ {
			samples = append(samples, s)
		}
	}
	prior, ws := c.warmSeed(pred, activeVersion, reason)
	st.LastWarmStart = ws
	models, tr, err := c.deps.Trainer.Fit(ctx, samples, prior)
	if err != nil && prior != nil {
		// A warm fit that errors (kernel or dimension mismatch against the
		// prior) must not take the retrain down with it: record the
		// fallback and fit cold.
		*ws = WarmStartReport{Fallback: "warm fit failed: " + err.Error()}
		models, tr, err = c.deps.Trainer.Fit(ctx, samples, nil)
	}
	if err != nil {
		return finish(OutcomeFailed, "", nil, fmt.Errorf("adapt: training candidate: %w", err))
	}
	if ws.Used {
		ws.MatchedRows = warmMatched(models)
		tr.WarmStart = &registry.WarmStartInfo{
			FromVersion: ws.FromVersion,
			MatchedRows: ws.MatchedRows,
		}
	}
	// The manifest records distinct live observations, not the
	// weight-replicated sample count the trainer saw.
	tr.Observations = len(foldIn)

	version, err := c.deps.Store.Reserve(c.deps.Device)
	if err != nil {
		return finish(OutcomeFailed, "", nil, fmt.Errorf("adapt: reserving version: %w", err))
	}
	var fronts *registry.Fronts
	if c.deps.Fronts != nil {
		fronts = c.deps.Fronts(models)
	}
	if _, err := c.deps.Store.SaveWithFronts(c.deps.Device, version, models, tr, fronts); err != nil {
		return finish(OutcomeFailed, version, nil, fmt.Errorf("adapt: publishing candidate: %w", err))
	}

	hr := c.compare(pred, models, holdout)
	if !hr.Passed {
		return finish(OutcomeRejected, version, &hr,
			fmt.Errorf("adapt: candidate %s failed the holdout check (candidate %.4f vs active %.4f over %d samples)",
				version, hr.CandidateRMSE, hr.ActiveRMSE, hr.Samples))
	}
	if err := c.deps.Install(version, models); err != nil {
		return finish(OutcomeFailed, version, &hr, fmt.Errorf("adapt: activating %s: %w", version, err))
	}
	return finish(OutcomeActivated, version, &hr, nil)
}

// warmSeed decides whether this retrain may seed the solver from the active
// models and returns the prior to pass to the trainer (nil = cold) plus the
// report for /adapt/status. Warm requires: warm starts enabled, an
// automatic trigger (manual retrains exist to escape a bad model, so they
// never inherit its state), and an active snapshot whose recorded feature
// schema still matches the running binary — models built against a
// different feature layout cannot seed rows meaningfully.
func (c *Controller) warmSeed(pred *engine.Predictor, version, reason string) (*core.Models, *WarmStartReport) {
	if c.cfg.DisableWarmStart {
		return nil, &WarmStartReport{Fallback: "disabled by configuration"}
	}
	if !warmEligible(reason) {
		return nil, &WarmStartReport{Fallback: "manual retrains always fit cold"}
	}
	man, err := c.deps.Store.GetManifest(c.deps.Device, version)
	if err != nil {
		return nil, &WarmStartReport{Fallback: "active manifest unavailable: " + err.Error()}
	}
	if !man.Schema.Equal(registry.CurrentSchema()) {
		return nil, &WarmStartReport{Fallback: "feature schema changed since " + version}
	}
	prior := pred.Core().Models
	if prior == nil || prior.Speedup == nil || prior.Energy == nil {
		return nil, &WarmStartReport{Fallback: "active predictor carries no models"}
	}
	return prior, &WarmStartReport{Used: true, FromVersion: version}
}

// warmMatched sums the re-matched support-vector counts over both fitted
// models (zero when the trainer ignored the warm seed).
func warmMatched(m *core.Models) int {
	n := 0
	if m.Speedup != nil && m.Speedup.Warm != nil {
		n += m.Speedup.Warm.Matched
	}
	if m.Energy != nil && m.Energy.Warm != nil {
		n += m.Energy.Warm.Matched
	}
	return n
}

// split partitions the observations into fold-in and holdout sets: every
// HoldoutEvery-th observation (by arrival order) is held out, so the
// holdout spans the whole window rather than just its newest tail. When
// there are observations but fewer than HoldoutEvery, the newest one is
// held out anyway — the holdout guard must never be vacuous while there
// is any evidence to judge a candidate on (manual retrains skip the
// min-samples gate, so this path is reachable).
func (c *Controller) split(obs []Observation) (foldIn, holdout []Observation) {
	for i, o := range obs {
		if (i+1)%c.cfg.HoldoutEvery == 0 {
			holdout = append(holdout, o)
		} else {
			foldIn = append(foldIn, o)
		}
	}
	if len(holdout) == 0 && len(obs) > 0 {
		foldIn, holdout = obs[:len(obs)-1], obs[len(obs)-1:]
	}
	return foldIn, holdout
}

// compare evaluates candidate and active models on the holdout and applies
// the margin. An empty holdout passes vacuously — split guarantees that
// only happens when there are no observations at all, i.e. a plain
// retrain with no evidence to judge against.
func (c *Controller) compare(active *engine.Predictor, candidate *core.Models, holdout []Observation) HoldoutReport {
	hr := HoldoutReport{Samples: len(holdout), Margin: c.cfg.HoldoutMargin}
	if len(holdout) == 0 {
		hr.Passed = true
		return hr
	}
	var candSq, actSq float64
	for _, o := range holdout {
		v := o.Sample().Vector.Slice()
		ds := candidate.Speedup.Predict(v) - o.Speedup
		de := candidate.Energy.Predict(v) - o.NormEnergy
		candSq += (ds*ds + de*de) / 2
		p := active.PredictConfig(o.Features, o.Config)
		ds = p.Speedup - o.Speedup
		de = p.NormEnergy - o.NormEnergy
		actSq += (ds*ds + de*de) / 2
	}
	n := float64(len(holdout))
	hr.CandidateRMSE = math.Sqrt(candSq / n)
	hr.ActiveRMSE = math.Sqrt(actSq / n)
	hr.Passed = hr.CandidateRMSE <= hr.ActiveRMSE*hr.Margin
	return hr
}

// snapshotState copies the retrain history under the lock.
func (c *Controller) snapshotState() RetrainState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// Status assembles the full loop snapshot: store accounting, the drift
// verdict over the current window, and the retrain history.
func (c *Controller) Status() Status {
	st := Status{
		Auto:    c.cfg.Auto,
		Store:   c.obs.stats(),
		Retrain: c.snapshotState(),
		Config:  c.cfg,
	}
	if c.deps.WAL != nil {
		ws := c.deps.WAL.Stats()
		st.WAL = &ws
	}
	if pred, version, ok := c.deps.Current(); ok {
		st.ModelVersion = version
		st.Drift = c.detect(pred, c.obs.tail(c.cfg.Window))
	}
	return st
}

// StoreStats returns the observation store's accounting without
// recomputing the drift verdict — the cheap subset of Status for ingest
// responses.
func (c *Controller) StoreStats() StoreStats { return c.obs.stats() }

// Observations returns a copy of the stored observations, oldest first
// (used by the experiments and for debugging).
func (c *Controller) Observations() []Observation { return c.obs.snapshot() }
