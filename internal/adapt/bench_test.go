package adapt

// Retrain benchmarks and the warm/cold speed gate. The benchmarks run at
// the paper's full scale (106 micro-benchmarks × 40 sampled settings, plus
// a 48-observation window folded in at weight 3 — the adaptation loop's
// defaults); the gate test runs the same comparison at a small scale fast
// enough for every CI run, and fails if warm-started retraining loses its
// advantage over cold.

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/svm"
)

// benchExtra builds the adaptation batch: nobs distinct observations,
// weight-replicated w times each, the exact sample shape runRetrain hands
// the trainer. Targets deviate ±0.2 from nominal — roughly the 2×-baseline
// error level at which the drift detector actually fires a retrain — so
// many rows land outside the ε-tube (ε = 0.1) and the fits must genuinely
// incorporate them: a warm start cannot get away with declaring the prior
// optimum still optimal.
func benchExtra(nobs, w int) []core.Sample {
	out := make([]core.Sample, 0, nobs*w)
	for i := 0; i < nobs; i++ {
		dev := 0.2 * math.Sin(float64(i)*2.399963)
		o := obs(1.0+dev, 0.95+0.8*dev)
		o.Features[1] = 0.1 + 0.01*float64(i%5)
		o.Features[2] = float64(i) / float64(nobs)
		s := o.Sample()
		for j := 0; j < w; j++ {
			out = append(out, s)
		}
	}
	return out
}

// retrainSetup builds a trainer over a fresh engine, fits the prior (the
// "active" models, trained on the base corpus only — also warming the
// trainer's cached base matrix), and returns the observation batch.
func retrainSetup(tb testing.TB, kernels, settings, nobs int) (*EngineTrainer, *core.Models, []core.Sample) {
	tb.Helper()
	// The iteration cap is raised so both arms run to convergence: under
	// the serving default the paper-scale linear fit is cut off at the cap
	// (~870k iterations), which would make cold and warm both measure the
	// cap instead of the retrain.
	eng := engine.NewDefault(engine.Options{Core: core.Options{
		SettingsPerKernel: settings,
		Params:            svm.Params{C: 1000, Epsilon: 0.1, MaxIter: 40_000_000},
	}})
	ks := engine.TrainingKernels()
	if kernels < len(ks) {
		ks = ks[:kernels]
	}
	tr := NewEngineTrainer(eng, ks)
	prior, _, err := tr.Fit(context.Background(), nil, nil)
	if err != nil {
		tb.Fatalf("prior fit: %v", err)
	}
	return tr, prior, benchExtra(nobs, 3)
}

func benchRetrain(b *testing.B, prior func(*core.Models) *core.Models) {
	tr, active, extra := retrainSetup(b, len(engine.TrainingKernels()), 40, 48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tr.Fit(context.Background(), extra, prior(active)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkColdRetrain(b *testing.B) {
	benchRetrain(b, func(*core.Models) *core.Models { return nil })
}

func BenchmarkWarmRetrain(b *testing.B) {
	benchRetrain(b, func(m *core.Models) *core.Models { return m })
}

// TestWarmRetrainSpeedGate is the CI regression gate: at a small corpus
// scale, a warm-started retrain must finish in under half the cold retrain's
// wall time (at full scale the measured gap is far larger; see
// BENCH_PR9.json). Both variants are timed twice and judged on their best
// run to shed scheduler noise on loaded runners.
func TestWarmRetrainSpeedGate(t *testing.T) {
	// 80 kernels × 20 settings: large enough that the linear fit's
	// superlinear iteration growth shows the warm advantage clearly
	// (~9× here vs ~19× at full scale; under ~500 rows it shrinks toward
	// parity), small enough to keep the whole gate under ~20 s.
	tr, active, extra := retrainSetup(t, 80, 20, 16)
	timeFit := func(prior *core.Models) time.Duration {
		best := time.Duration(0)
		for i := 0; i < 2; i++ {
			start := time.Now()
			if _, _, err := tr.Fit(context.Background(), extra, prior); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		return best
	}
	cold := timeFit(nil)
	warm := timeFit(active)
	t.Logf("cold %v, warm %v (%.1fx)", cold, warm, float64(cold)/float64(warm))
	if 2*warm >= cold {
		t.Fatalf("warm retrain took %v vs cold %v — the warm start no longer pays for itself", warm, cold)
	}
}
