package adapt

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gpu"
	"repro/internal/registry"
	"repro/internal/svm"
)

// walObs builds a valid observation with distinguishable content so replay
// ordering and fidelity are checkable.
func walObs(i int) Observation {
	o := obs(1+float64(i)/100, 1+float64(i)/200)
	o.Kernel = fmt.Sprintf("k%d", i)
	o.Node = fmt.Sprintf("node-%d", i%3)
	o.At = time.Unix(1700000000+int64(i), int64(i)*1000).UTC()
	return o
}

// obsJSON canonicalizes an observation slice for bit-identical comparison.
func obsJSON(t *testing.T, obs []Observation) string {
	t.Helper()
	b, err := json.Marshal(append([]Observation{}, obs...))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestWALRoundTrip pins the core durability contract: everything appended
// before Close is recovered bit-identically, in order, on reopen.
func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(WALConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var want []Observation
	for i := 0; i < 20; i++ {
		want = append(want, walObs(i))
	}
	if err := w.Append(want...); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(WALConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got, total := w2.Recovered()
	if total != 20 {
		t.Fatalf("recovered total %d, want 20", total)
	}
	if obsJSON(t, got) != obsJSON(t, want) {
		t.Fatal("recovered observations differ from what was appended")
	}
	if got, _ := w2.Recovered(); got != nil {
		t.Fatal("Recovered did not release the buffer on first call")
	}
}

// TestWALSurvivesWithoutClose proves the group commit makes records durable
// without a clean shutdown: after an explicit Sync, a reopen (the kill -9
// stand-in — the old handle is simply abandoned) recovers everything.
func TestWALSurvivesWithoutClose(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(WALConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var want []Observation
	for i := 0; i < 5; i++ {
		want = append(want, walObs(i))
	}
	if err := w.Append(want...); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	// No Close: the process "died". Reopen the directory.
	w2, err := OpenWAL(WALConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got, total := w2.Recovered()
	if total != 5 || obsJSON(t, got) != obsJSON(t, want) {
		t.Fatalf("recovered %d observations after unclean shutdown, want the 5 synced ones", len(got))
	}
}

// TestWALRotationAndCompaction drives enough records through small segments
// to force rotation, then checks compaction keeps only segments the ring
// bound can still need while replay stays exact.
func TestWALRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	cfg := WALConfig{Dir: dir, SegmentRecords: 8, Capacity: 16}
	w, err := OpenWAL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var all []Observation
	for i := 0; i < 100; i++ {
		o := walObs(i)
		all = append(all, o)
		if err := w.Append(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Compaction bound: segments whose newest record <= 100-16 are deleted.
	// With 8-record segments that leaves at most ceil(16/8)+1 = 3 files.
	files, err := filepath.Glob(filepath.Join(dir, "obs-*.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) > 4 {
		t.Fatalf("compaction left %d segments for a 16-record ring with 8-record segments", len(files))
	}

	w2, err := OpenWAL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got, total := w2.Recovered()
	if total != 100 {
		t.Fatalf("recovered total %d, want 100", total)
	}
	if len(got) < 16 {
		t.Fatalf("recovered window has %d observations, want >= the 16-record ring bound", len(got))
	}
	if obsJSON(t, got) != obsJSON(t, all[100-len(got):]) {
		t.Fatal("recovered window is not the newest suffix of what was appended")
	}
}

// TestWALTruncatedAtEveryByteOffset is the crash-replay property test: a
// single-segment log cut at every possible byte offset must reopen without
// error and recover exactly the records whose lines fit the prefix whole.
func TestWALTruncatedAtEveryByteOffset(t *testing.T) {
	src := t.TempDir()
	w, err := OpenWAL(WALConfig{Dir: src})
	if err != nil {
		t.Fatal(err)
	}
	var want []Observation
	for i := 0; i < 6; i++ {
		want = append(want, walObs(i))
	}
	if err := w.Append(want...); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(src, "obs-*.wal"))
	if err != nil || len(files) != 1 {
		t.Fatalf("want exactly one segment, got %v (%v)", files, err)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	name := filepath.Base(files[0])

	for cut := 0; cut <= len(data); cut++ {
		dir := filepath.Join(t.TempDir(), "wal")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w2, err := OpenWAL(WALConfig{Dir: dir})
		if err != nil {
			t.Fatalf("cut at byte %d: OpenWAL: %v", cut, err)
		}
		got, total := w2.Recovered()

		// The longest valid prefix: every complete line within the cut.
		complete := strings.Count(string(data[:cut]), "\n")
		if len(got) != complete || total != complete {
			t.Fatalf("cut at byte %d: recovered %d records (total %d), want %d", cut, len(got), total, complete)
		}
		if obsJSON(t, got) != obsJSON(t, want[:complete]) {
			t.Fatalf("cut at byte %d: recovered records differ from the valid prefix", cut)
		}

		// The log must stay writable past the truncation point.
		if err := w2.Append(walObs(100 + cut)); err != nil {
			t.Fatalf("cut at byte %d: append after recovery: %v", cut, err)
		}
		if st := w2.Stats(); st.LastSeq != complete+1 {
			t.Fatalf("cut at byte %d: sequence resumed at %d, want %d", cut, st.LastSeq, complete+1)
		}
		if err := w2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWALCorruptMiddleSegmentDropsTail proves corruption in an earlier
// segment truncates the whole log there: later segments are past the valid
// prefix and are deleted, not replayed out of order.
func TestWALCorruptMiddleSegmentDropsTail(t *testing.T) {
	dir := t.TempDir()
	cfg := WALConfig{Dir: dir, SegmentRecords: 4, Capacity: 1024}
	w, err := OpenWAL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if err := w.Append(walObs(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "obs-*.wal"))
	if err != nil || len(files) < 3 {
		t.Fatalf("want >= 3 segments, got %v (%v)", files, err)
	}

	// Corrupt the second segment's second record.
	mid := files[1]
	data, err := os.ReadFile(mid)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	lines[1] = strings.Replace(lines[1], "{", "!", 1)
	if err := os.WriteFile(mid, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got, total := w2.Recovered()
	if total != 5 || len(got) != 5 {
		t.Fatalf("recovered %d records (total %d), want the 5 before the corruption", len(got), total)
	}
	if !w2.Stats().Truncated {
		t.Fatal("stats do not report the truncation")
	}
	left, err := filepath.Glob(filepath.Join(dir, "obs-*.wal"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range left {
		if f > mid {
			t.Fatalf("segment past the corruption survived replay: %s", f)
		}
	}
}

// TestWALSeedsController proves the controller-level claim: a restart with
// the same WAL directory reproduces the store stats — count, total,
// dropped, and per-node attribution — bit-identically.
func TestWALSeedsController(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(WALConfig{Dir: dir, Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	r := newRig(t, constModels(t, 1, 1), registry.Training{SpeedupRMSE: 0.2, EnergyRMSE: 0.2})
	deps := r.deps(fakeTrainer{models: constModels(t, 1, 1)})
	deps.WAL = w
	c := New(Config{Capacity: 8}, deps)
	for i := 0; i < 20; i++ {
		o := walObs(i)
		o.At = time.Time{} // Observe stamps it
		if _, err := c.Observe(o); err != nil {
			t.Fatal(err)
		}
	}
	before := c.Status()
	beforeObs := obsJSON(t, c.Observations())
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(WALConfig{Dir: dir, Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	deps.WAL = w2
	c2 := New(Config{Capacity: 8}, deps)
	after := c2.Status()

	if obsJSON(t, c2.Observations()) != beforeObs {
		t.Fatal("replayed observations differ from the pre-restart window")
	}
	bs, as := before.Store, after.Store
	if as.Count != bs.Count || as.Total != bs.Total || as.Dropped != bs.Dropped {
		t.Fatalf("store stats after replay %+v, want %+v", as, bs)
	}
	if fmt.Sprint(as.Nodes) != fmt.Sprint(bs.Nodes) {
		t.Fatalf("node attribution after replay %v, want %v", as.Nodes, bs.Nodes)
	}
	if before.Drift.SpeedupRMSE != after.Drift.SpeedupRMSE ||
		before.Drift.EnergyRMSE != after.Drift.EnergyRMSE {
		t.Fatalf("drift baseline after replay %+v, want %+v", after.Drift, before.Drift)
	}
	if after.WAL == nil || after.WAL.LastSeq != 20 {
		t.Fatalf("status WAL accounting %+v, want last_seq 20", after.WAL)
	}
}

// benchController builds a controller over constant models for the ingest
// benchmarks — the drift detector runs over the real window, so the
// numbers are the full Observe path, not just the store add.
func benchController(b *testing.B, wal *WAL) *Controller {
	b.Helper()
	mk := func(v string) *svm.Model {
		m, err := svm.Load(strings.NewReader(
			`{"kernel":{"type":"linear"},"support_vectors":[],"coefs":[],"b":` + v + `}`))
		if err != nil {
			b.Fatal(err)
		}
		return m
	}
	models := &core.Models{Speedup: mk("1"), Energy: mk("1")}
	store, err := registry.Open("")
	if err != nil {
		b.Fatal(err)
	}
	man, err := store.Save("titanx", "", models, registry.Training{SpeedupRMSE: 0.2, EnergyRMSE: 0.2})
	if err != nil {
		b.Fatal(err)
	}
	pred := engine.NewPredictor(models, gpu.TitanX().Ladder, engine.Options{Workers: 1})
	return New(Config{}, Deps{
		Device: "titanx", Store: store,
		Current: func() (*engine.Predictor, string, bool) { return pred, man.Version, true },
		Install: func(string, *core.Models) error { return nil },
		Trainer: fakeTrainer{models: models},
		WAL:     wal,
	})
}

// BenchmarkObsIngestMemOnly is the memory-only ingest baseline: one full
// Observe (validation, ring add, drift detection over the window).
func BenchmarkObsIngestMemOnly(b *testing.B) {
	c := benchController(b, nil)
	o := obs(1.01, 1.02)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Observe(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObsWALAppend is the same ingest with the durable log attached
// (inline write, background group-committed fsync). The PR 8 gate: must
// stay <2× BenchmarkObsIngestMemOnly on the 1-vCPU CI runner.
func BenchmarkObsWALAppend(b *testing.B) {
	w, err := OpenWAL(WALConfig{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	c := benchController(b, w)
	o := obs(1.01, 1.02)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Observe(o); err != nil {
			b.Fatal(err)
		}
	}
}
