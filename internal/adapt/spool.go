package adapt

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
)

// Spool is the agent-side observation queue: observations that could not
// be forwarded to the control plane are enqueued here and flushed in order
// on reconnect — never silently dropped. With a directory it is disk-backed
// (an append-only JSONL file plus an atomically written ack offset, so a
// partitioned agent that also crashes still flushes everything on the next
// boot); without one it degrades to an in-memory queue that survives the
// partition but not the process. All methods are safe for concurrent use.
type Spool struct {
	dir string

	mu    sync.Mutex
	f     *os.File      // nil in memory mode
	queue []Observation // un-acked, oldest first
	acked int           // records at the head of the file already flushed

	enqueued, flushed int // lifetime counters
	truncated         bool
	closed            bool
}

// SpoolStats is the spool's accounting, reported on the agent's /healthz.
type SpoolStats struct {
	// Dir is the backing directory ("" for a memory-only spool).
	Dir string `json:"dir,omitempty"`
	// Depth is the number of queued, not-yet-flushed observations.
	Depth int `json:"depth"`
	// Enqueued and Flushed are lifetime counts (Enqueued - Flushed = Depth,
	// across restarts when disk-backed).
	Enqueued int `json:"enqueued"`
	Flushed  int `json:"flushed"`
	// Truncated reports whether the last open had to cut a corrupt tail.
	Truncated bool `json:"truncated,omitempty"`
}

// spool file names inside the directory.
const (
	spoolFile = "spool.wal"
	ackFile   = "spool.ack"
)

// OpenSpool opens (creating if needed) a disk-backed spool in dir,
// replaying any queued observations a previous process left behind —
// truncating a torn tail, and skipping the prefix the ack offset marks as
// already flushed. An empty dir returns a memory-only spool.
func OpenSpool(dir string) (*Spool, error) {
	s := &Spool{dir: dir}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("adapt: creating spool dir: %w", err)
	}
	path := filepath.Join(dir, spoolFile)
	obs, truncAt, err := readSpoolFile(path)
	if err != nil {
		return nil, err
	}
	if truncAt >= 0 {
		s.truncated = true
		if err := os.Truncate(path, truncAt); err != nil {
			return nil, fmt.Errorf("adapt: truncating corrupt spool tail: %w", err)
		}
	}
	acked := readAck(filepath.Join(dir, ackFile))
	if acked > len(obs) {
		acked = len(obs) // the ack can only run ahead after tail truncation
	}
	s.queue = append(s.queue, obs[acked:]...)
	s.acked = acked
	s.enqueued, s.flushed = len(obs), acked
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("adapt: opening spool file: %w", err)
	}
	s.f = f
	return s, nil
}

// readSpoolFile parses the spool's JSONL file, returning the valid
// observations and truncAt >= 0 when a torn or corrupt tail must be cut.
func readSpoolFile(path string) (obs []Observation, truncAt int64, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, -1, nil
	}
	if err != nil {
		return nil, -1, fmt.Errorf("adapt: reading spool file: %w", err)
	}
	var off int64
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			return obs, off, nil
		}
		var o Observation
		if json.Unmarshal(data[:nl], &o) != nil {
			return obs, off, nil
		}
		obs = append(obs, o)
		off += int64(nl + 1)
		data = data[nl+1:]
	}
	return obs, -1, nil
}

// readAck reads the persisted ack offset (0 when absent or unreadable —
// re-flushing already-delivered observations is safe, losing queued ones
// is not, so every failure mode rounds down).
func readAck(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	n, err := strconv.Atoi(strings.TrimSpace(string(data)))
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// Enqueue queues observations for a later flush. Disk-backed spools fsync
// before returning — this path only runs when forwarding already failed,
// so durability wins over latency here.
func (s *Spool) Enqueue(obs ...Observation) error {
	if len(obs) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("adapt: spool is closed")
	}
	if s.f != nil {
		var buf bytes.Buffer
		for _, o := range obs {
			line, err := json.Marshal(o)
			if err != nil {
				return fmt.Errorf("adapt: encoding spooled observation: %w", err)
			}
			buf.Write(line)
			buf.WriteByte('\n')
		}
		if _, err := s.f.Write(buf.Bytes()); err != nil {
			return fmt.Errorf("adapt: appending to spool: %w", err)
		}
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("adapt: fsyncing spool: %w", err)
		}
	}
	s.queue = append(s.queue, obs...)
	s.enqueued += len(obs)
	return nil
}

// Depth is the number of queued, not-yet-flushed observations.
func (s *Spool) Depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// Pending copies out up to max queued observations, oldest first, without
// dequeuing them — the caller forwards the batch and then Acks exactly how
// many the control plane accepted.
func (s *Spool) Pending(max int) []Observation {
	s.mu.Lock()
	defer s.mu.Unlock()
	if max <= 0 || max > len(s.queue) {
		max = len(s.queue)
	}
	out := make([]Observation, max)
	copy(out, s.queue[:max])
	return out
}

// Ack marks the n oldest queued observations as flushed. Disk-backed
// spools persist the offset atomically (temp file + rename) and compact
// the file away entirely once the queue drains, so the spool's footprint
// is zero in the healthy steady state.
func (s *Spool) Ack(n int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n <= 0 {
		return nil
	}
	if n > len(s.queue) {
		n = len(s.queue)
	}
	s.queue = s.queue[n:]
	s.acked += n
	s.flushed += n
	if s.f == nil {
		return nil
	}
	if len(s.queue) == 0 {
		// Drained: drop the file and the offset instead of growing forever.
		if err := s.f.Truncate(0); err != nil {
			return fmt.Errorf("adapt: compacting drained spool: %w", err)
		}
		s.acked = 0
		os.Remove(filepath.Join(s.dir, ackFile))
		return nil
	}
	return s.writeAck()
}

// writeAck persists the ack offset atomically. Caller holds mu.
func (s *Spool) writeAck() error {
	path := filepath.Join(s.dir, ackFile)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(strconv.Itoa(s.acked)), 0o644); err != nil {
		return fmt.Errorf("adapt: writing spool ack: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("adapt: committing spool ack: %w", err)
	}
	return nil
}

// Stats snapshots the spool's accounting.
func (s *Spool) Stats() SpoolStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SpoolStats{
		Dir: s.dir, Depth: len(s.queue),
		Enqueued: s.enqueued, Flushed: s.flushed,
		Truncated: s.truncated,
	}
}

// Close releases the backing file; queued observations stay on disk for
// the next process. Memory-mode spools forget their queue.
func (s *Spool) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.f == nil {
		return nil
	}
	return s.f.Close()
}
