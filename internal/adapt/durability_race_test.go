package adapt

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/registry"
)

// TestConcurrentIngestSpoolRetrainRace drives the three durability actors
// at once — WAL-backed Observe ingest (with auto-retrain firing under it),
// a producer enqueueing into a disk-backed spool, and a flusher draining it
// with Pending/Ack — plus a Status poller. Run with -race this is the
// durability layer's concurrency check; the final state asserts nothing
// was lost or double-counted on either log.
func TestConcurrentIngestSpoolRetrainRace(t *testing.T) {
	walDir, spoolDir := t.TempDir(), t.TempDir()
	wal, err := OpenWAL(WALConfig{Dir: walDir, Capacity: 64, SegmentRecords: 16})
	if err != nil {
		t.Fatal(err)
	}
	r := newRig(t, constModels(t, 1, 1), registry.Training{})
	deps := r.deps(fakeTrainer{models: constModels(t, 1, 1)})
	deps.WAL = wal
	c := New(Config{
		Auto:       true,
		MinSamples: 4,
		// Tiny pinned baselines: every wild observation is drift, so
		// retrains keep starting while ingest continues.
		BaselineSpeedup: 0.01,
		BaselineEnergy:  0.01,
		Cooldown:        10 * time.Millisecond,
	}, deps)

	spool, err := OpenSpool(spoolDir)
	if err != nil {
		t.Fatal(err)
	}

	const (
		ingests  = 200
		enqueues = 150
	)
	var wg sync.WaitGroup

	// Actor 1: observation ingest — every Observe appends to the WAL and
	// may kick off a background retrain through the fake trainer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < ingests; i++ {
			if _, err := c.Observe(obs(5, 5)); err != nil {
				t.Errorf("observe %d: %v", i, err)
				return
			}
		}
	}()

	// Actor 2: spool producer (an agent's failing forward path).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < enqueues; i++ {
			o := obs(1, 1)
			o.Kernel = fmt.Sprintf("s%03d", i)
			if err := spool.Enqueue(o); err != nil {
				t.Errorf("enqueue %d: %v", i, err)
				return
			}
		}
	}()

	// Actor 3: spool flusher (the heal path) — drains concurrently with
	// the producer and must preserve order and count.
	flushed := make([]Observation, 0, enqueues)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for len(flushed) < enqueues {
			batch := spool.Pending(16)
			if len(batch) == 0 {
				time.Sleep(time.Millisecond)
				continue
			}
			if err := spool.Ack(len(batch)); err != nil {
				t.Errorf("ack: %v", err)
				return
			}
			flushed = append(flushed, batch...)
		}
	}()

	// Actor 4: status poller (the /healthz and /adapt/status surface). It
	// runs until the other actors finish, so it is not in their WaitGroup.
	stop := make(chan struct{})
	pollerDone := make(chan struct{})
	go func() {
		defer close(pollerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = c.Status()
			_ = wal.Stats()
			_ = spool.Stats()
			time.Sleep(time.Millisecond)
		}
	}()

	actors := make(chan struct{})
	go func() { wg.Wait(); close(actors) }()
	select {
	case <-actors:
	case <-time.After(2 * time.Minute):
		t.Fatal("concurrent durability actors did not finish")
	}
	close(stop)
	<-pollerDone

	// Spool: everything the producer wrote came out exactly once, in order.
	if len(flushed) != enqueues {
		t.Fatalf("flushed %d spooled observations, want %d", len(flushed), enqueues)
	}
	for i, o := range flushed {
		if want := fmt.Sprintf("s%03d", i); o.Kernel != want {
			t.Fatalf("flush position %d holds %s, want %s (order lost)", i, o.Kernel, want)
		}
	}
	if d := spool.Depth(); d != 0 {
		t.Fatalf("spool depth %d after full drain, want 0", d)
	}
	if err := spool.Close(); err != nil {
		t.Fatal(err)
	}

	// WAL: the full ingest stream was logged; a reopen recovers exactly the
	// capacity-bounded window with the true lifetime total.
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
	wal2, err := OpenWAL(WALConfig{Dir: walDir, Capacity: 64, SegmentRecords: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()
	recovered, total := wal2.Recovered()
	if total != ingests {
		t.Fatalf("WAL lifetime total %d after concurrent ingest, want %d", total, ingests)
	}
	if len(recovered) < 64 || len(recovered) > 64+16 {
		t.Fatalf("WAL recovered %d observations, want the ~64-capacity window (segment-granular)", len(recovered))
	}
	if st := c.Status(); st.Store.Total != ingests {
		t.Fatalf("store ingested %d observations, want %d", st.Store.Total, ingests)
	}
}
