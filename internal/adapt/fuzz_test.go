package adapt

// Fuzz targets for the durability layer's parsing surfaces. The WAL's
// crash-safety contract is "the longest valid prefix wins": whatever bytes a
// crash (or bit rot) leaves in a segment file, replay must never panic and
// must recover exactly the records before the first torn or corrupt one.
// Seed corpora live under testdata/fuzz/ and run as regression tests in
// every plain `go test`; CI additionally runs a bounded fuzzing pass.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// fuzzSegment writes data as the WAL's first segment file and returns its
// path and directory.
func fuzzSegment(t *testing.T, data []byte) (dir, path string) {
	t.Helper()
	dir = t.TempDir()
	path = filepath.Join(dir, "obs-0000000000000001.wal")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return dir, path
}

func FuzzWALRecord(f *testing.F) {
	// Seeds: a clean two-record segment, a torn tail, corrupt JSON after a
	// valid record, an empty file, and binary garbage.
	clean := func(seqs ...int) []byte {
		var buf bytes.Buffer
		for _, s := range seqs {
			line, err := json.Marshal(walRecord{Seq: s, Obs: Observation{Kernel: "k", Speedup: 1.01, NormEnergy: 0.93}})
			if err != nil {
				f.Fatal(err)
			}
			buf.Write(line)
			buf.WriteByte('\n')
		}
		return buf.Bytes()
	}
	two := clean(1, 2)
	f.Add(two)
	f.Add(two[:len(two)-3])
	f.Add(append(clean(1), []byte("not json\n")...))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x1f, '\n', 0x80})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir, _ := fuzzSegment(t, data)
		path := filepath.Join(dir, "obs-0000000000000001.wal")

		// readSegment: never panics, never errors on parse problems, and
		// reports a cut point inside the file or no cut at all.
		recs, truncAt, err := readSegment(path)
		if err != nil {
			t.Fatalf("readSegment errored on parse input: %v", err)
		}
		if truncAt < -1 || truncAt > int64(len(data)) {
			t.Fatalf("truncAt %d outside [-1, %d]", truncAt, len(data))
		}

		// Longest-valid-prefix: re-reading the bytes before the cut must be
		// clean and yield the same records.
		if truncAt >= 0 {
			_, prefixPath := fuzzSegment(t, data[:truncAt])
			recs2, trunc2, err := readSegment(prefixPath)
			if err != nil {
				t.Fatalf("re-reading valid prefix: %v", err)
			}
			if trunc2 != -1 {
				t.Fatalf("valid prefix still reports a cut at %d", trunc2)
			}
			if len(recs2) != len(recs) {
				t.Fatalf("prefix re-read recovered %d records, first read %d", len(recs2), len(recs))
			}
		}

		// Replay: OpenWAL repairs the log in place; the recovered window is
		// the parsed records (up to the ring capacity), and a second open
		// finds a clean log with nothing left to truncate.
		w, err := OpenWAL(WALConfig{Dir: dir})
		if err != nil {
			t.Fatalf("replay: %v", err)
		}
		obs, _ := w.Recovered()
		want := len(recs)
		if want > DefaultCapacity {
			want = DefaultCapacity
		}
		if len(obs) != want {
			t.Fatalf("recovered %d observations, want %d", len(obs), want)
		}
		if w.Stats().Truncated != (truncAt >= 0) {
			t.Fatalf("Truncated = %v, readSegment cut = %v", w.Stats().Truncated, truncAt >= 0)
		}
		if err := w.Close(); err != nil {
			t.Fatalf("close after replay: %v", err)
		}

		w2, err := OpenWAL(WALConfig{Dir: dir})
		if err != nil {
			t.Fatalf("second replay: %v", err)
		}
		defer w2.Close()
		if w2.Stats().Truncated {
			t.Fatal("second replay still found corruption — repair did not converge")
		}
		obs2, _ := w2.Recovered()
		if len(obs2) != len(obs) {
			t.Fatalf("second replay recovered %d observations, first %d", len(obs2), len(obs))
		}
	})
}
