package adapt

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// WAL durability defaults, applied by WALConfig.withDefaults.
const (
	// DefaultSegmentRecords rotates a segment file after this many records.
	DefaultSegmentRecords = 512
	// DefaultSyncEvery fsyncs after this many appended records (group
	// commit); the sync interval bounds the window for slow trickles.
	DefaultSyncEvery = 16
	// DefaultSyncInterval bounds how long an appended record can sit
	// un-fsynced waiting for a group commit to fill.
	DefaultSyncInterval = 100 * time.Millisecond
)

// WALConfig tunes the observation write-ahead log. Zero values select the
// documented defaults; Dir is required.
type WALConfig struct {
	// Dir is the log directory (created if missing).
	Dir string
	// SegmentRecords rotates segments after this many records.
	SegmentRecords int
	// Capacity is the observation ring bound the log compacts past: whole
	// segments whose newest record has been evicted from the ring are
	// deleted. It should match (and is defaulted to) the store capacity.
	Capacity int
	// SyncEvery fsyncs after this many appended records; SyncInterval
	// bounds the wait for a partial batch. Together they define the
	// durability window: a crash loses at most the records appended since
	// the last group commit.
	SyncEvery    int
	SyncInterval time.Duration
}

// withDefaults resolves the zero values.
func (c WALConfig) withDefaults() WALConfig {
	if c.SegmentRecords <= 0 {
		c.SegmentRecords = DefaultSegmentRecords
	}
	if c.Capacity <= 0 {
		c.Capacity = DefaultCapacity
	}
	if c.SyncEvery <= 0 {
		c.SyncEvery = DefaultSyncEvery
	}
	if c.SyncInterval <= 0 {
		c.SyncInterval = DefaultSyncInterval
	}
	return c
}

// WALStats is the log's accounting, reported under /adapt/status.
type WALStats struct {
	// Dir is the log directory.
	Dir string `json:"dir"`
	// Segments is the number of live segment files; Records the records
	// they hold.
	Segments int `json:"segments"`
	Records  int `json:"records"`
	// LastSeq is the newest appended sequence number (== the store's Total
	// after a clean replay).
	LastSeq int `json:"last_seq"`
	// Pending is how many appended records await the next group commit.
	Pending int `json:"pending"`
	// Truncated reports whether the last replay had to cut a corrupt tail.
	Truncated bool `json:"truncated,omitempty"`
	// LastError is the most recent append/sync failure ("" when healthy).
	LastError string `json:"last_error,omitempty"`
}

// walRecord is one JSONL line: a sequence number plus the observation. The
// sequence lets replay reconstruct the ring's lifetime accounting (Total,
// Dropped) even after compaction has deleted the oldest segments.
type walRecord struct {
	Seq int         `json:"seq"`
	Obs Observation `json:"obs"`
}

// walSegment is one on-disk segment's bookkeeping.
type walSegment struct {
	path        string
	first, last int // sequence range (inclusive); first > last for empty
	records     int
}

// WAL is a crash-safe append-only observation log: JSONL records in
// rotating segment files, group-committed with fsync, compacted past the
// observation ring's bound, and truncated at the first corrupt record on
// replay (a torn tail from a crash never poisons recovery — the longest
// valid prefix wins). It makes the adaptation loop's drift window durable:
// a daemon restart replays the window bit-identically instead of starting
// the hours-long accumulation over. All methods are safe for concurrent
// use.
type WAL struct {
	cfg WALConfig

	mu        sync.Mutex
	f         *os.File
	cur       walSegment   // the open segment
	old       []walSegment // closed segments, oldest first
	seq       int          // last assigned sequence number
	pending   int          // records written but not yet fsynced
	timer     *time.Timer  // pending group-commit deadline
	truncated bool
	lastErr   string
	closed    bool

	recovered []Observation // replayed window, consumed by the controller
}

// OpenWAL opens (creating if needed) the log directory, replays every
// segment — truncating the log at the first corrupt or torn record — and
// returns the WAL positioned to append after the last valid record. The
// recovered window is handed to the adaptation controller via Recovered.
func OpenWAL(cfg WALConfig) (*WAL, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("adapt: WAL needs a directory")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("adapt: creating WAL dir: %w", err)
	}
	w := &WAL{cfg: cfg}
	if err := w.replay(); err != nil {
		return nil, err
	}
	w.compact()
	return w, nil
}

// segmentPath names a segment by its first sequence number, so a sorted
// directory listing is replay order.
func (w *WAL) segmentPath(firstSeq int) string {
	return filepath.Join(w.cfg.Dir, fmt.Sprintf("obs-%016d.wal", firstSeq))
}

// replay scans the segments in order, recovering the longest valid prefix:
// the first record that is torn (no trailing newline) or corrupt (bad
// JSON) truncates its file there, and every later segment is deleted —
// they are past the valid prefix. The newest Capacity recovered
// observations become the controller's seed window.
func (w *WAL) replay() error {
	entries, err := os.ReadDir(w.cfg.Dir)
	if err != nil {
		return fmt.Errorf("adapt: reading WAL dir: %w", err)
	}
	var paths []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), "obs-") && strings.HasSuffix(e.Name(), ".wal") {
			paths = append(paths, filepath.Join(w.cfg.Dir, e.Name()))
		}
	}
	sort.Strings(paths)

	var obs []Observation
	for i, path := range paths {
		recs, truncAt, err := readSegment(path)
		seg := walSegment{path: path, first: 1, last: 0, records: len(recs)}
		if len(recs) > 0 {
			seg.first, seg.last = recs[0].Seq, recs[len(recs)-1].Seq
			w.seq = recs[len(recs)-1].Seq
		}
		for _, r := range recs {
			obs = append(obs, r.Obs)
		}
		w.old = append(w.old, seg)
		if err != nil {
			return err
		}
		if truncAt >= 0 {
			// Corrupt or torn tail: cut this file at the last valid record
			// and drop everything past it.
			w.truncated = true
			if err := os.Truncate(path, truncAt); err != nil {
				return fmt.Errorf("adapt: truncating corrupt WAL tail %s: %w", path, err)
			}
			for _, later := range paths[i+1:] {
				if err := os.Remove(later); err != nil {
					return fmt.Errorf("adapt: removing WAL segment past corruption %s: %w", later, err)
				}
			}
			break
		}
	}
	if n := len(obs); n > w.cfg.Capacity {
		obs = obs[n-w.cfg.Capacity:]
	}
	w.recovered = obs

	// Append into the newest segment if it has room, else start fresh.
	if n := len(w.old); n > 0 && w.old[n-1].records < w.cfg.SegmentRecords {
		w.cur = w.old[n-1]
		w.old = w.old[:n-1]
		f, err := os.OpenFile(w.cur.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("adapt: reopening WAL segment: %w", err)
		}
		w.f = f
		return nil
	}
	return w.openSegment()
}

// openSegment starts a new segment for the next sequence number. Caller
// holds mu (or is still single-threaded in OpenWAL).
func (w *WAL) openSegment() error {
	path := w.segmentPath(w.seq + 1)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("adapt: creating WAL segment: %w", err)
	}
	w.f = f
	w.cur = walSegment{path: path, first: w.seq + 1, last: w.seq, records: 0}
	return nil
}

// readSegment parses one segment file. It returns the valid records, and
// truncAt >= 0 when the file must be cut there (torn or corrupt tail);
// parse problems are recovery work, not errors — only I/O failures error.
func readSegment(path string) (recs []walRecord, truncAt int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, -1, fmt.Errorf("adapt: reading WAL segment %s: %w", path, err)
	}
	var off int64
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			return recs, off, nil // torn tail: no newline
		}
		var rec walRecord
		if json.Unmarshal(data[:nl], &rec) != nil {
			return recs, off, nil // corrupt record
		}
		recs = append(recs, rec)
		off += int64(nl + 1)
		data = data[nl+1:]
	}
	return recs, -1, nil
}

// Recovered returns the replayed window (newest Capacity observations,
// oldest first) and the lifetime ingest total, releasing the buffer. The
// adaptation controller consumes it exactly once to seed its store.
func (w *WAL) Recovered() (obs []Observation, total int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	obs, w.recovered = w.recovered, nil
	return obs, w.seq
}

// Append logs a batch of observations as one group: the records are
// written together and fsync'd by the group-commit policy (immediately
// when SyncEvery records are pending, otherwise within SyncInterval). An
// I/O failure is recorded in Stats and returned, but the caller's
// in-memory ingest stands — durability degrades, serving does not.
func (w *WAL) Append(obs ...Observation) error {
	if len(obs) == 0 {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("adapt: WAL is closed")
	}
	var buf bytes.Buffer
	for i, o := range obs {
		line, err := json.Marshal(walRecord{Seq: w.seq + 1 + i, Obs: o})
		if err != nil {
			return w.fail(fmt.Errorf("adapt: encoding WAL record: %w", err))
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	if _, err := w.f.Write(buf.Bytes()); err != nil {
		return w.fail(fmt.Errorf("adapt: appending to WAL: %w", err))
	}
	w.seq += len(obs)
	w.cur.last = w.seq
	w.cur.records += len(obs)
	w.pending += len(obs)

	if w.cur.records >= w.cfg.SegmentRecords {
		if err := w.rotate(); err != nil {
			return w.fail(err)
		}
	} else if w.pending >= w.cfg.SyncEvery {
		// A full group commit is due: fsync off the hot path so ingest
		// latency stays near the memory-only ring's. The write above has
		// already reached the kernel — only a machine crash (not a killed
		// process) can lose records inside the commit window.
		w.scheduleSync(0)
	} else {
		w.scheduleSync(w.cfg.SyncInterval)
	}
	w.lastErr = ""
	return nil
}

// scheduleSync arms the background group commit, pulling an already armed
// timer forward when the commit becomes due now. Caller holds mu.
func (w *WAL) scheduleSync(d time.Duration) {
	if w.timer == nil {
		w.timer = time.AfterFunc(d, w.timedSync)
	} else if d == 0 {
		w.timer.Reset(0)
	}
}

// fail records an error for Stats and returns it. Caller holds mu.
func (w *WAL) fail(err error) error {
	w.lastErr = err.Error()
	return err
}

// timedSync is the group-commit timer body.
func (w *WAL) timedSync() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.timer = nil
	if w.closed || w.pending == 0 {
		return
	}
	if err := w.syncLocked(); err != nil {
		w.lastErr = err.Error()
	}
}

// syncLocked fsyncs the current segment and clears the pending count.
// Caller holds mu.
func (w *WAL) syncLocked() error {
	if w.timer != nil {
		w.timer.Stop()
		w.timer = nil
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("adapt: fsyncing WAL: %w", err)
	}
	w.pending = 0
	return nil
}

// Sync forces the group commit now — tests and shutdown paths use it to
// pin the durability point.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	if err := w.syncLocked(); err != nil {
		return w.fail(err)
	}
	return nil
}

// rotate fsyncs and closes the current segment, starts the next one, and
// compacts segments the ring bound has fully evicted. Caller holds mu.
func (w *WAL) rotate() error {
	if err := w.syncLocked(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("adapt: closing WAL segment: %w", err)
	}
	w.old = append(w.old, w.cur)
	if err := w.openSegment(); err != nil {
		return err
	}
	w.compact()
	return nil
}

// compact deletes whole segments whose newest record has fallen out of the
// observation ring (seq <= lastSeq - Capacity): replay can never need
// them, so the log's disk footprint stays proportional to the ring, not to
// the daemon's uptime. Deletion failures are recorded, not fatal — an
// over-retained segment only costs disk. Caller holds mu.
func (w *WAL) compact() {
	bound := w.seq - w.cfg.Capacity
	kept := w.old[:0]
	for _, seg := range w.old {
		if seg.records > 0 && seg.last <= bound {
			if err := os.Remove(seg.path); err != nil {
				w.lastErr = fmt.Sprintf("adapt: compacting WAL segment: %v", err)
				kept = append(kept, seg)
			}
			continue
		}
		kept = append(kept, seg)
	}
	w.old = kept
}

// Stats snapshots the log's accounting.
func (w *WAL) Stats() WALStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	st := WALStats{
		Dir:       w.cfg.Dir,
		Segments:  len(w.old) + 1,
		Records:   w.cur.records,
		LastSeq:   w.seq,
		Pending:   w.pending,
		Truncated: w.truncated,
		LastError: w.lastErr,
	}
	for _, seg := range w.old {
		st.Records += seg.records
	}
	return st
}

// Close fsyncs outstanding records and closes the log. Appends after Close
// fail.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if w.timer != nil {
		w.timer.Stop()
		w.timer = nil
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return fmt.Errorf("adapt: fsyncing WAL at close: %w", err)
	}
	return w.f.Close()
}
