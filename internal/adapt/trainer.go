package adapt

import (
	"context"
	"sync"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/registry"
)

// Trainer produces a candidate model set from the base training corpus plus
// the folded-in observations. The production implementation is
// EngineTrainer; tests inject degenerate trainers to pin the holdout
// guardrail (a candidate that is worse on held-out observations must never
// be activated, no matter what the trainer returned).
type Trainer interface {
	// Fit trains candidate models on the base corpus extended with extra
	// samples and reports the training metadata for the snapshot manifest.
	Fit(ctx context.Context, extra []core.Sample) (*core.Models, registry.Training, error)
}

// EngineTrainer is the production Trainer: it rebuilds the synthetic
// training set through the engine's worker pool (once — the set is
// deterministic, so it is cached across retrains), appends the
// observations, fits both SVRs concurrently, and records the training
// residuals the drift detector will use as the next baseline.
type EngineTrainer struct {
	eng *engine.Engine
	// Kernels overrides the training kernel list (nil = the paper's full
	// 106-micro-benchmark suite); tests use small subsets.
	Kernels []core.TrainingKernel

	baseOnce    sync.Once
	base        []core.Sample
	baseKernels int
	baseErr     error
}

// NewEngineTrainer builds the production trainer over an engine.
func NewEngineTrainer(eng *engine.Engine, kernels []core.TrainingKernel) *EngineTrainer {
	return &EngineTrainer{eng: eng, Kernels: kernels}
}

// baseSamples builds (once) the synthetic training set.
func (t *EngineTrainer) baseSamples(ctx context.Context) ([]core.Sample, error) {
	t.baseOnce.Do(func() {
		kernels := t.Kernels
		if kernels == nil {
			kernels = engine.TrainingKernels()
		}
		t.baseKernels = len(kernels)
		t.base, t.baseErr = t.eng.BuildTrainingSet(ctx, kernels)
	})
	return t.base, t.baseErr
}

// Fit implements Trainer: base synthetic samples plus the observations,
// fitted through the engine's concurrent SVR path.
func (t *EngineTrainer) Fit(ctx context.Context, extra []core.Sample) (*core.Models, registry.Training, error) {
	base, err := t.baseSamples(ctx)
	if err != nil {
		return nil, registry.Training{}, err
	}
	samples := make([]core.Sample, 0, len(base)+len(extra))
	samples = append(samples, base...)
	samples = append(samples, extra...)
	models, err := t.eng.Fit(ctx, samples)
	if err != nil {
		return nil, registry.Training{}, err
	}
	// Observations counts the extra samples as given; the adaptation
	// controller overwrites it with the distinct observation count (its
	// extra samples are weight-replicated).
	tr := registry.Training{
		SettingsPerKernel: t.eng.Options().Core.WithDefaults().SettingsPerKernel,
		Kernels:           t.baseKernels,
		Samples:           len(samples),
		Observations:      len(extra),
	}
	tr.SpeedupRMSE, tr.EnergyRMSE = core.ResidualRMSE(models, samples)
	return models, tr, nil
}
