package adapt

import (
	"context"
	"sync"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/registry"
)

// Trainer produces a candidate model set from the base training corpus plus
// the folded-in observations. The production implementation is
// EngineTrainer; tests inject degenerate trainers to pin the holdout
// guardrail (a candidate that is worse on held-out observations must never
// be activated, no matter what the trainer returned).
type Trainer interface {
	// Fit trains candidate models on the base corpus extended with extra
	// samples and reports the training metadata for the snapshot manifest.
	// A non-nil prior seeds both fits from the corresponding prior models
	// (warm start); implementations that cannot warm-start may ignore it.
	Fit(ctx context.Context, extra []core.Sample, prior *core.Models) (*core.Models, registry.Training, error)
}

// EngineTrainer is the production Trainer: it rebuilds the synthetic
// training set through the engine's worker pool (once — the set is
// deterministic, so it is cached across retrains), lays it out as a
// solver-ready matrix (also once — per retrain only the folded-in
// observation rows pay for layout), fits both SVRs concurrently, and
// records the training residuals the drift detector will use as the next
// baseline.
type EngineTrainer struct {
	eng *engine.Engine
	// Kernels overrides the training kernel list (nil = the paper's full
	// 106-micro-benchmark suite); tests use small subsets.
	Kernels []core.TrainingKernel

	baseOnce    sync.Once
	base        *core.TrainingMatrix
	baseKernels int
	baseErr     error
}

// NewEngineTrainer builds the production trainer over an engine.
func NewEngineTrainer(eng *engine.Engine, kernels []core.TrainingKernel) *EngineTrainer {
	return &EngineTrainer{eng: eng, Kernels: kernels}
}

// baseMatrix builds (once) the synthetic training set and its solver
// layout. Reusing the laid-out design rows across retrains is also what
// makes warm starts bit-exact: the unchanged corpus rows are the same
// float64 storage every retrain, so the prior model's support vectors
// re-match them identically.
func (t *EngineTrainer) baseMatrix(ctx context.Context) (*core.TrainingMatrix, error) {
	t.baseOnce.Do(func() {
		kernels := t.Kernels
		if kernels == nil {
			kernels = engine.TrainingKernels()
		}
		t.baseKernels = len(kernels)
		var samples []core.Sample
		if samples, t.baseErr = t.eng.BuildTrainingSet(ctx, kernels); t.baseErr == nil {
			t.base = core.NewTrainingMatrix(samples)
		}
	})
	return t.base, t.baseErr
}

// Fit implements Trainer: base synthetic samples plus the observations,
// fitted through the engine's concurrent SVR path, warm-seeded from prior
// when one is supplied.
func (t *EngineTrainer) Fit(ctx context.Context, extra []core.Sample, prior *core.Models) (*core.Models, registry.Training, error) {
	base, err := t.baseMatrix(ctx)
	if err != nil {
		return nil, registry.Training{}, err
	}
	m := base.WithExtra(extra)
	models, err := t.eng.FitMatrix(ctx, m, prior)
	if err != nil {
		return nil, registry.Training{}, err
	}
	// Observations counts the extra samples as given; the adaptation
	// controller overwrites it with the distinct observation count (its
	// extra samples are weight-replicated).
	tr := registry.Training{
		SettingsPerKernel: t.eng.Options().Core.WithDefaults().SettingsPerKernel,
		Kernels:           t.baseKernels,
		Samples:           m.Len(),
		Observations:      len(extra),
	}
	tr.SpeedupRMSE, tr.EnergyRMSE = core.ResidualRMSEOn(models, m)
	return models, tr, nil
}
