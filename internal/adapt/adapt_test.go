package adapt

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/features"
	"repro/internal/freq"
	"repro/internal/gpu"
	"repro/internal/registry"
	"repro/internal/svm"
)

// constModel builds a support-vector-free model that predicts exactly b
// everywhere — the exact arithmetic the threshold-boundary test relies on.
func constModel(t *testing.T, b float64) *svm.Model {
	t.Helper()
	doc := `{"kernel":{"type":"linear"},"support_vectors":[],"coefs":[],"b":` +
		strconv.FormatFloat(b, 'g', -1, 64) + `}`
	m, err := svm.Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// constModels pairs two constant models into a model set.
func constModels(t *testing.T, speedup, energy float64) *core.Models {
	t.Helper()
	return &core.Models{Speedup: constModel(t, speedup), Energy: constModel(t, energy)}
}

// rig is a minimal serving stack for controller tests: an in-memory
// registry, a current (predictor, version) pair, and an install recorder.
type rig struct {
	t     *testing.T
	store *registry.Store

	mu       sync.Mutex
	version  string
	pred     *engine.Predictor
	installs []string
}

func newRig(t *testing.T, m *core.Models, tr registry.Training) *rig {
	t.Helper()
	store, err := registry.Open("")
	if err != nil {
		t.Fatal(err)
	}
	man, err := store.Save("titanx", "", m, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Activate("titanx", man.Version); err != nil {
		t.Fatal(err)
	}
	r := &rig{t: t, store: store}
	r.setCurrent(man.Version, m)
	return r
}

func (r *rig) setCurrent(version string, m *core.Models) {
	pred := engine.NewPredictor(m, gpu.TitanX().Ladder, engine.Options{Workers: 1})
	r.mu.Lock()
	r.version, r.pred = version, pred
	r.mu.Unlock()
}

func (r *rig) current() (*engine.Predictor, string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pred, r.version, r.pred != nil
}

func (r *rig) install(version string, m *core.Models) error {
	r.mu.Lock()
	r.installs = append(r.installs, version)
	r.mu.Unlock()
	r.setCurrent(version, m)
	return nil
}

func (r *rig) installed() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.installs...)
}

func (r *rig) deps(tr Trainer) Deps {
	return Deps{Device: "titanx", Store: r.store, Current: r.current, Install: r.install, Trainer: tr}
}

// fakeTrainer returns fixed candidate models without any real training.
type fakeTrainer struct {
	models *core.Models
	err    error
}

func (f fakeTrainer) Fit(ctx context.Context, extra []core.Sample, prior *core.Models) (*core.Models, registry.Training, error) {
	if f.err != nil {
		return nil, registry.Training{}, f.err
	}
	return f.models, registry.Training{Observations: len(extra)}, nil
}

// obs builds a valid observation with the given measured objectives.
func obs(speedup, energy float64) Observation {
	var st features.Static
	st[0] = 0.5
	return Observation{
		Kernel:     "k",
		Features:   st,
		Config:     freq.Config{Mem: 3505, Core: 1000},
		Speedup:    speedup,
		NormEnergy: energy,
	}
}

func TestObserveRejectsInvalid(t *testing.T) {
	r := newRig(t, constModels(t, 1, 1), registry.Training{})
	c := New(Config{}, r.deps(fakeTrainer{models: constModels(t, 1, 1)}))

	bad := []Observation{
		func() Observation { o := obs(1, 1); o.Speedup = math.NaN(); return o }(),
		func() Observation { o := obs(1, 1); o.Speedup = math.Inf(1); return o }(),
		func() Observation { o := obs(1, 1); o.NormEnergy = math.Inf(-1); return o }(),
		func() Observation { o := obs(1, 1); o.NormEnergy = math.NaN(); return o }(),
		func() Observation { o := obs(1, 1); o.Speedup = 0; return o }(),
		func() Observation { o := obs(1, 1); o.NormEnergy = -0.5; return o }(),
		func() Observation { o := obs(1, 1); o.Config = freq.Config{}; return o }(),
		func() Observation {
			o := obs(1, 1)
			for i := range o.Features {
				o.Features[i] = 0.5 // sums to 5 > 1: invalid
			}
			return o
		}(),
		func() Observation { o := obs(1, 1); o.Features[0] = math.NaN(); return o }(),
	}
	for i, o := range bad {
		if _, err := c.Observe(o); err == nil {
			t.Errorf("observation %d accepted, want rejection: %+v", i, o)
		}
	}
	if st := c.Status(); st.Store.Count != 0 || st.Store.Total != 0 {
		t.Errorf("store not empty after rejections: %+v", st.Store)
	}
}

func TestDriftEmptyStore(t *testing.T) {
	r := newRig(t, constModels(t, 1, 1), registry.Training{})
	c := New(Config{}, r.deps(fakeTrainer{models: constModels(t, 1, 1)}))
	st := c.Status()
	if st.Drift.Drift {
		t.Error("empty store signalled drift")
	}
	if st.Drift.Samples != 0 || st.Drift.Reason != "no observations" {
		t.Errorf("unexpected drift status: %+v", st.Drift)
	}
	if st.ModelVersion != "v0001" {
		t.Errorf("ModelVersion = %q, want v0001", st.ModelVersion)
	}
}

func TestDriftAllIdenticalObservations(t *testing.T) {
	// Identical observations that match the model exactly: rolling error is
	// exactly zero and must not drift.
	r := newRig(t, constModels(t, 1, 1), registry.Training{})
	c := New(Config{MinSamples: 4}, r.deps(fakeTrainer{models: constModels(t, 1, 1)}))
	for i := 0; i < 8; i++ {
		res, err := c.Observe(obs(1, 1))
		if err != nil {
			t.Fatal(err)
		}
		if res.Drift.Drift {
			t.Fatalf("identical perfect observations signalled drift: %+v", res.Drift)
		}
	}
	st := c.Status()
	if st.Drift.SpeedupRMSE != 0 || st.Drift.EnergyRMSE != 0 {
		t.Errorf("rolling RMSE = (%g, %g), want exactly zero", st.Drift.SpeedupRMSE, st.Drift.EnergyRMSE)
	}
	if st.Drift.Reason != "within threshold" {
		t.Errorf("reason = %q", st.Drift.Reason)
	}
}

func TestDriftThresholdBoundary(t *testing.T) {
	// Baseline 0.125, factor 2 ⇒ threshold exactly 0.25. Observations with
	// measured speedup 0.75 against a model predicting exactly 1.0 have an
	// error of exactly 0.25 — at the threshold, which must NOT trigger
	// (strict comparison). One worse observation pushes past it.
	r := newRig(t, constModels(t, 1, 1), registry.Training{})
	c := New(Config{
		MinSamples:      4,
		Window:          8,
		DriftFactor:     2,
		BaselineSpeedup: 0.125,
		BaselineEnergy:  8, // energy never trips in this test
	}, r.deps(fakeTrainer{models: constModels(t, 1, 1)}))

	var last IngestResult
	for i := 0; i < 8; i++ {
		var err error
		last, err = c.Observe(obs(0.75, 1))
		if err != nil {
			t.Fatal(err)
		}
	}
	if last.Drift.SpeedupRMSE != 0.25 {
		t.Fatalf("rolling speedup RMSE = %v, want exactly 0.25", last.Drift.SpeedupRMSE)
	}
	if last.Drift.ThresholdSpeedup != 0.25 {
		t.Fatalf("threshold = %v, want exactly 0.25", last.Drift.ThresholdSpeedup)
	}
	if last.Drift.Drift {
		t.Fatal("rolling error exactly at the threshold triggered drift (comparison must be strict)")
	}

	// One clearly-worse observation lifts the RMSE above the threshold.
	res, err := c.Observe(obs(0.25, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Drift.Drift {
		t.Fatalf("drift not signalled above threshold: %+v", res.Drift)
	}
	if !strings.Contains(res.Drift.Reason, "speedup RMSE") {
		t.Errorf("reason = %q, want the tripped objective named", res.Drift.Reason)
	}
}

func TestBaselineFromManifestResiduals(t *testing.T) {
	// With no explicit override, the baseline comes from the active
	// snapshot's recorded training residuals, floored by BaselineFloor.
	r := newRig(t, constModels(t, 1, 1), registry.Training{SpeedupRMSE: 0.5, EnergyRMSE: 0.001})
	c := New(Config{}, r.deps(fakeTrainer{models: constModels(t, 1, 1)}))
	if _, err := c.Observe(obs(1, 1)); err != nil {
		t.Fatal(err)
	}
	d := c.Status().Drift
	if d.BaselineSpeedup != 0.5 {
		t.Errorf("speedup baseline = %v, want the manifest residual 0.5", d.BaselineSpeedup)
	}
	if d.BaselineEnergy != DefaultBaselineFloor {
		t.Errorf("energy baseline = %v, want the floor %v (manifest residual below it)",
			d.BaselineEnergy, DefaultBaselineFloor)
	}
}

// TestHoldoutRejectionNeverActivates pins the acceptance criterion: a
// candidate that is worse than the active model on the held-out
// observations is published for inspection but never activated — serving
// keeps the old version.
func TestHoldoutRejectionNeverActivates(t *testing.T) {
	r := newRig(t, constModels(t, 1, 1), registry.Training{})
	// Observations agree perfectly with the active model; the candidate
	// predicts 5.0 everywhere and is therefore strictly worse on holdout.
	c := New(Config{}, r.deps(fakeTrainer{models: constModels(t, 5, 5)}))
	for i := 0; i < 16; i++ {
		if _, err := c.Observe(obs(1, 1)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.Retrain(context.Background(), "manual test")
	if err == nil {
		t.Fatal("retrain with a worse candidate reported success")
	}
	if st.LastOutcome != OutcomeRejected {
		t.Fatalf("outcome = %q, want %q (err: %v)", st.LastOutcome, OutcomeRejected, err)
	}
	if st.Rejected != 1 || st.Activated != 0 {
		t.Fatalf("counters: %+v", st)
	}
	if st.LastHoldout == nil || st.LastHoldout.Passed {
		t.Fatalf("holdout report: %+v", st.LastHoldout)
	}
	if got := r.installed(); len(got) != 0 {
		t.Fatalf("rejected candidate was installed: %v", got)
	}
	if _, version, _ := r.current(); version != "v0001" {
		t.Fatalf("serving version = %q, want unchanged v0001", version)
	}
	// The rejected candidate is still published (inspectable, manually
	// activatable) under the reserved version.
	if st.LastVersion == "" {
		t.Fatal("rejected candidate has no published version")
	}
	if _, err := r.store.GetManifest("titanx", st.LastVersion); err != nil {
		t.Fatalf("rejected candidate %s not in the registry: %v", st.LastVersion, err)
	}
	if active, _ := r.store.Active("titanx"); active != "v0001" {
		t.Fatalf("registry active pointer moved to %s", active)
	}
}

func TestHoldoutPassActivates(t *testing.T) {
	r := newRig(t, constModels(t, 1, 1), registry.Training{})
	// Observations measure 0.8 while the active model predicts 1.0; the
	// candidate predicts 0.8 and wins the holdout comparison.
	c := New(Config{}, r.deps(fakeTrainer{models: constModels(t, 0.8, 0.8)}))
	for i := 0; i < 16; i++ {
		if _, err := c.Observe(obs(0.8, 0.8)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.Retrain(context.Background(), "manual test")
	if err != nil {
		t.Fatal(err)
	}
	if st.LastOutcome != OutcomeActivated || st.Activated != 1 {
		t.Fatalf("outcome: %+v", st)
	}
	if got := r.installed(); len(got) != 1 || got[0] != st.LastVersion {
		t.Fatalf("installs = %v, want [%s]", got, st.LastVersion)
	}
	if _, version, _ := r.current(); version != st.LastVersion {
		t.Fatalf("serving %q, want %q", version, st.LastVersion)
	}
	if st.LastHoldout == nil || !st.LastHoldout.Passed || st.LastHoldout.Samples == 0 {
		t.Fatalf("holdout report: %+v", st.LastHoldout)
	}
}

func TestAutoRetrainOnDriftWithCooldown(t *testing.T) {
	r := newRig(t, constModels(t, 1, 1), registry.Training{})
	c := New(Config{
		Auto:            true,
		Sync:            true,
		MinSamples:      4,
		BaselineSpeedup: 0.02,
		BaselineEnergy:  0.02,
		Cooldown:        time.Hour,
	}, r.deps(fakeTrainer{models: constModels(t, 0.5, 0.5)}))

	var started int
	var reason string
	for i := 0; i < 12; i++ {
		res, err := c.Observe(obs(0.5, 0.5))
		if err != nil {
			t.Fatal(err)
		}
		if res.RetrainStarted {
			started++
			if reason == "" {
				reason = res.Reason
			}
		}
	}
	if started != 1 {
		t.Fatalf("retrains started = %d, want exactly 1 (cooldown must gate repeats)", started)
	}
	if !strings.HasPrefix(reason, "drift:") {
		t.Errorf("trigger reason = %q, want a drift reason", reason)
	}
	st := c.Status()
	if st.Retrain.Retrains != 1 || st.Retrain.LastOutcome != OutcomeActivated {
		t.Fatalf("retrain state: %+v", st.Retrain)
	}
	if st.Retrain.CooldownUntil.IsZero() {
		t.Error("cooldown not recorded")
	}
}

func TestAutoRetrainSampleCountPolicy(t *testing.T) {
	r := newRig(t, constModels(t, 1, 1), registry.Training{})
	c := New(Config{
		Auto:         true,
		Sync:         true,
		RetrainEvery: 5,
		Cooldown:     time.Nanosecond,
	}, r.deps(fakeTrainer{models: constModels(t, 1, 1)}))

	for i := 0; i < 4; i++ {
		res, err := c.Observe(obs(1, 1)) // no drift: observations are perfect
		if err != nil {
			t.Fatal(err)
		}
		if res.RetrainStarted {
			t.Fatalf("retrain started after %d observations, want 5", i+1)
		}
	}
	res, err := c.Observe(obs(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.RetrainStarted {
		t.Fatal("sample-count policy did not trigger on the 5th observation")
	}
	if !strings.Contains(res.Reason, "sample-count policy") {
		t.Errorf("reason = %q", res.Reason)
	}
}

func TestAutoDisabledNeverRetrains(t *testing.T) {
	r := newRig(t, constModels(t, 1, 1), registry.Training{})
	c := New(Config{
		Auto:            false,
		MinSamples:      2,
		BaselineSpeedup: 0.02,
		BaselineEnergy:  0.02,
	}, r.deps(fakeTrainer{models: constModels(t, 0.5, 0.5)}))
	for i := 0; i < 8; i++ {
		res, err := c.Observe(obs(0.5, 0.5))
		if err != nil {
			t.Fatal(err)
		}
		if res.RetrainStarted {
			t.Fatal("auto-disabled controller started a retrain")
		}
	}
	if st := c.Status(); !st.Drift.Drift {
		t.Error("drift should still be reported with auto off")
	} else if st.Retrain.Retrains != 0 {
		t.Errorf("retrains = %d, want 0", st.Retrain.Retrains)
	}
}

func TestRetrainInProgressRejected(t *testing.T) {
	r := newRig(t, constModels(t, 1, 1), registry.Training{})
	c := New(Config{}, r.deps(fakeTrainer{models: constModels(t, 1, 1)}))
	c.retrainMu.Lock()
	defer c.retrainMu.Unlock()
	if _, err := c.Retrain(context.Background(), "blocked"); !errors.Is(err, ErrRetrainInProgress) {
		t.Fatalf("err = %v, want ErrRetrainInProgress", err)
	}
}

func TestRetrainFailureRecorded(t *testing.T) {
	r := newRig(t, constModels(t, 1, 1), registry.Training{})
	c := New(Config{}, r.deps(fakeTrainer{err: fmt.Errorf("solver exploded")}))
	for i := 0; i < 4; i++ {
		if _, err := c.Observe(obs(1, 1)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.Retrain(context.Background(), "manual")
	if err == nil {
		t.Fatal("failing trainer reported success")
	}
	if st.LastOutcome != OutcomeFailed || !strings.Contains(st.LastError, "solver exploded") {
		t.Fatalf("state: %+v", st)
	}
	if got := r.installed(); len(got) != 0 {
		t.Fatalf("failed retrain installed %v", got)
	}
}

func TestStoreBoundEvictsOldest(t *testing.T) {
	r := newRig(t, constModels(t, 1, 1), registry.Training{})
	c := New(Config{Capacity: 4}, r.deps(fakeTrainer{models: constModels(t, 1, 1)}))
	for i := 0; i < 10; i++ {
		o := obs(1, 1)
		o.Kernel = fmt.Sprintf("k%d", i)
		if _, err := c.Observe(o); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Status().Store
	if st.Count != 4 || st.Total != 10 || st.Dropped != 6 {
		t.Fatalf("store stats: %+v", st)
	}
	kept := c.Observations()
	if len(kept) != 4 || kept[0].Kernel != "k6" || kept[3].Kernel != "k9" {
		t.Fatalf("kept observations: %+v", kept)
	}
}

// TestHoldoutNeverVacuousWithEvidence pins the manual-retrain guardrail:
// even with fewer observations than HoldoutEvery (where the modular split
// would hold out nothing), a worse candidate must still be judged — and
// rejected — on the evidence that exists.
func TestHoldoutNeverVacuousWithEvidence(t *testing.T) {
	r := newRig(t, constModels(t, 1, 1), registry.Training{})
	c := New(Config{}, r.deps(fakeTrainer{models: constModels(t, 5, 5)}))
	for i := 0; i < 3; i++ { // below HoldoutEvery (4)
		if _, err := c.Observe(obs(1, 1)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.Retrain(context.Background(), "manual with little evidence")
	if err == nil || st.LastOutcome != OutcomeRejected {
		t.Fatalf("outcome = %q (err %v), want %q: 3 observations must yield a non-empty holdout",
			st.LastOutcome, err, OutcomeRejected)
	}
	if st.LastHoldout == nil || st.LastHoldout.Samples != 1 {
		t.Fatalf("holdout: %+v, want exactly the newest observation held out", st.LastHoldout)
	}
	if _, version, _ := r.current(); version != "v0001" {
		t.Fatalf("serving moved to %q", version)
	}
}

func TestHoldoutSplitSpansWindow(t *testing.T) {
	r := newRig(t, constModels(t, 1, 1), registry.Training{})
	c := New(Config{HoldoutEvery: 4}, r.deps(fakeTrainer{models: constModels(t, 1, 1)}))
	var all []Observation
	for i := 0; i < 10; i++ {
		o := obs(1, 1)
		o.Kernel = fmt.Sprintf("k%d", i)
		all = append(all, o)
	}
	foldIn, holdout := c.split(all)
	if len(foldIn) != 8 || len(holdout) != 2 {
		t.Fatalf("split %d/%d, want 8/2", len(foldIn), len(holdout))
	}
	if holdout[0].Kernel != "k3" || holdout[1].Kernel != "k7" {
		t.Fatalf("holdout = %v, want every 4th observation", holdout)
	}
}
