package adapt

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/freq"
)

// Observation is one measured production sample reported back to the
// serving stack: a kernel's static features, the frequency configuration it
// actually ran at, and the measured objectives relative to default clocks —
// the same (input, label) shape as a training sample, but observed live
// instead of sampled offline.
type Observation struct {
	// Kernel optionally names the kernel the sample came from (diagnostics
	// only; the features identify it to the models).
	Kernel string `json:"kernel,omitempty"`
	// Node names the fleet node that reported the observation ("" for
	// observations ingested locally). The control plane stamps it from the
	// forwarding agent's registration, so fleet-wide aggregation can be
	// broken down per node (StoreStats.Nodes) without trusting the body.
	Node string `json:"node,omitempty"`
	// Features is the kernel's static feature vector.
	Features features.Static `json:"features"`
	// Config is the frequency configuration the kernel ran at.
	Config freq.Config `json:"config"`
	// Speedup is the measured speedup relative to default clocks.
	Speedup float64 `json:"speedup"`
	// NormEnergy is the measured energy relative to default clocks.
	NormEnergy float64 `json:"norm_energy"`
	// At is when the observation was ingested (set by the store).
	At time.Time `json:"at"`
}

// Validate rejects observations the models could not learn from: non-finite
// or non-positive objectives, invalid feature vectors, and non-positive
// clocks. NaN/Inf guarding here is what keeps a single corrupt report from
// poisoning the rolling error and every later retrain.
func (o Observation) Validate() error {
	if !o.Features.Valid() {
		return fmt.Errorf("adapt: invalid static features %v", o.Features)
	}
	for name, v := range map[string]float64{"speedup": o.Speedup, "norm_energy": o.NormEnergy} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("adapt: %s is not finite", name)
		}
		if v <= 0 {
			return fmt.Errorf("adapt: %s must be positive, got %g", name, v)
		}
	}
	if o.Config.Mem <= 0 || o.Config.Core <= 0 {
		return fmt.Errorf("adapt: invalid configuration %v", o.Config)
	}
	return nil
}

// Sample converts the observation to a supervised training sample, the
// shape a retrain folds into the training set.
func (o Observation) Sample() core.Sample {
	return core.Sample{
		Kernel:     o.Kernel,
		Config:     o.Config,
		Vector:     features.Combine(o.Features, o.Config),
		Speedup:    o.Speedup,
		NormEnergy: o.NormEnergy,
	}
}

// StoreStats is a snapshot of the observation store's accounting.
type StoreStats struct {
	// Count is the number of observations currently held.
	Count int `json:"count"`
	// Capacity is the store's bound.
	Capacity int `json:"capacity"`
	// Total is how many observations were ever ingested.
	Total int `json:"total"`
	// Dropped is how many old observations the bound evicted.
	Dropped int `json:"dropped"`
	// Nodes breaks the held observations down by reporting fleet node
	// (Observation.Node); locally ingested observations have no node and
	// are not listed. Empty when no fleet node has reported.
	Nodes map[string]int `json:"nodes,omitempty"`
}

// store is a bounded ring buffer of observations: ingestion is O(1), the
// bound evicts the oldest sample, and snapshots copy out in arrival order.
type store struct {
	mu      sync.Mutex
	buf     []Observation
	start   int // index of the oldest observation
	count   int
	total   int
	dropped int
	nodes   map[string]int // held observations per reporting node
}

func newStore(capacity int) *store {
	return &store{buf: make([]Observation, capacity), nodes: map[string]int{}}
}

// add ingests one observation, evicting the oldest past the bound.
func (s *store) add(o Observation) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == len(s.buf) {
		s.nodeDelta(s.buf[s.start].Node, -1)
		s.buf[s.start] = o
		s.start = (s.start + 1) % len(s.buf)
		s.dropped++
	} else {
		s.buf[(s.start+s.count)%len(s.buf)] = o
		s.count++
	}
	s.nodeDelta(o.Node, 1)
	s.total++
}

// nodeDelta adjusts the per-node held count; locally ingested observations
// (no node) are not tracked. Caller holds mu.
func (s *store) nodeDelta(node string, d int) {
	if node == "" {
		return
	}
	if s.nodes[node] += d; s.nodes[node] <= 0 {
		delete(s.nodes, node)
	}
}

// restore seeds the ring from a WAL replay: obs is the recovered window
// (oldest first, at most capacity entries) and total the lifetime ingest
// count the log recorded. The ring invariant dropped = total - count makes
// the full pre-crash accounting reconstructible from just those two —
// replay is bit-identical to having ingested every observation live.
func (s *store) restore(obs []Observation, total int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(obs); n > len(s.buf) {
		obs = obs[n-len(s.buf):]
	}
	copy(s.buf, obs)
	s.start = 0
	s.count = len(obs)
	s.total = total
	s.dropped = total - s.count
	s.nodes = map[string]int{}
	for _, o := range obs {
		s.nodeDelta(o.Node, 1)
	}
}

// snapshot copies the held observations out, oldest first.
func (s *store) snapshot() []Observation {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Observation, s.count)
	for i := 0; i < s.count; i++ {
		out[i] = s.buf[(s.start+i)%len(s.buf)]
	}
	return out
}

// tail copies out the newest n observations, oldest of them first.
func (s *store) tail(n int) []Observation {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n > s.count {
		n = s.count
	}
	out := make([]Observation, n)
	for i := 0; i < n; i++ {
		out[i] = s.buf[(s.start+s.count-n+i)%len(s.buf)]
	}
	return out
}

// stats snapshots the accounting counters.
func (s *store) stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := StoreStats{Count: s.count, Capacity: len(s.buf), Total: s.total, Dropped: s.dropped}
	if len(s.nodes) > 0 {
		st.Nodes = make(map[string]int, len(s.nodes))
		for n, c := range s.nodes {
			st.Nodes[n] = c
		}
	}
	return st
}
