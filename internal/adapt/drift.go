package adapt

import (
	"fmt"
	"math"

	"repro/internal/engine"
)

// DriftStatus is the drift detector's verdict over the rolling observation
// window, reported by GET /adapt/status and recomputed on every ingest.
// All error values are fractional RMSEs of the two objectives (0.05 = 5
// percentage points), the same unit the training residuals recorded in a
// snapshot manifest use.
type DriftStatus struct {
	// Samples is the number of observations the rolling window covered.
	Samples int `json:"samples"`
	// Window is the configured rolling-window size.
	Window int `json:"window"`
	// SpeedupRMSE and EnergyRMSE are the active model's rolling prediction
	// errors over the window.
	SpeedupRMSE float64 `json:"speedup_rmse"`
	EnergyRMSE  float64 `json:"energy_rmse"`
	// BaselineSpeedup and BaselineEnergy are the training-time residual
	// RMSEs the rolling errors are compared against.
	BaselineSpeedup float64 `json:"baseline_speedup"`
	BaselineEnergy  float64 `json:"baseline_energy"`
	// ThresholdSpeedup and ThresholdEnergy are the trigger levels
	// (DriftFactor × baseline); rolling error strictly above either one
	// signals drift.
	ThresholdSpeedup float64 `json:"threshold_speedup"`
	ThresholdEnergy  float64 `json:"threshold_energy"`
	// Drift reports whether the detector currently signals drift.
	Drift bool `json:"drift"`
	// Reason explains the verdict ("below min-samples", "within threshold",
	// or which objective tripped).
	Reason string `json:"reason"`
}

// Residuals evaluates the predictor's errors on a set of observations and
// returns the fractional RMSE per objective. Empty input returns zeros.
// It is the single definition of observation error, shared by the drift
// detector, the drift-recovery experiment, and examples/autotune.
func Residuals(pred *engine.Predictor, obs []Observation) (speedup, energy float64) {
	if len(obs) == 0 {
		return 0, 0
	}
	var ss, se float64
	for _, o := range obs {
		p := pred.PredictConfig(o.Features, o.Config)
		ds := p.Speedup - o.Speedup
		de := p.NormEnergy - o.NormEnergy
		ss += ds * ds
		se += de * de
	}
	n := float64(len(obs))
	return math.Sqrt(ss / n), math.Sqrt(se / n)
}

// detect runs the drift rule: with at least MinSamples observations in the
// window, drift is signalled when either objective's rolling RMSE exceeds
// DriftFactor times its training-time baseline. The comparison is strict,
// so a rolling error exactly at the threshold does not trigger.
func (c *Controller) detect(pred *engine.Predictor, window []Observation) DriftStatus {
	baseS, baseE := c.baselines()
	st := DriftStatus{
		Samples:          len(window),
		Window:           c.cfg.Window,
		BaselineSpeedup:  baseS,
		BaselineEnergy:   baseE,
		ThresholdSpeedup: c.cfg.DriftFactor * baseS,
		ThresholdEnergy:  c.cfg.DriftFactor * baseE,
	}
	if len(window) == 0 {
		st.Reason = "no observations"
		return st
	}
	st.SpeedupRMSE, st.EnergyRMSE = Residuals(pred, window)
	if len(window) < c.cfg.MinSamples {
		st.Reason = fmt.Sprintf("below min-samples (%d < %d)", len(window), c.cfg.MinSamples)
		return st
	}
	switch {
	case st.SpeedupRMSE > st.ThresholdSpeedup:
		st.Drift = true
		st.Reason = fmt.Sprintf("speedup RMSE %.4f > threshold %.4f", st.SpeedupRMSE, st.ThresholdSpeedup)
	case st.EnergyRMSE > st.ThresholdEnergy:
		st.Drift = true
		st.Reason = fmt.Sprintf("energy RMSE %.4f > threshold %.4f", st.EnergyRMSE, st.ThresholdEnergy)
	default:
		st.Reason = "within threshold"
	}
	return st
}

// baselines resolves the training-time residual baselines the thresholds
// derive from: an explicit Config override wins, then the active snapshot
// manifest's recorded residuals, then the configured floor (which also
// clamps implausibly small recorded residuals, so a near-perfect fit cannot
// make the detector hair-triggered).
func (c *Controller) baselines() (speedup, energy float64) {
	speedup, energy = c.cfg.BaselineSpeedup, c.cfg.BaselineEnergy
	if speedup > 0 && energy > 0 {
		return speedup, energy
	}
	var manS, manE float64
	if _, version, ok := c.deps.Current(); ok {
		if man, err := c.deps.Store.GetManifest(c.deps.Device, version); err == nil {
			manS, manE = man.Training.SpeedupRMSE, man.Training.EnergyRMSE
		}
	}
	if speedup <= 0 {
		speedup = math.Max(manS, c.cfg.BaselineFloor)
	}
	if energy <= 0 {
		energy = math.Max(manE, c.cfg.BaselineFloor)
	}
	return speedup, energy
}
