package adapt

// Warm-start policy tests: which retrains may seed the solver from the
// active models, how the decision is reported under /adapt/status and in
// the published manifest, and that a failing warm fit falls back to cold
// instead of failing the retrain.

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/registry"
)

// recordingTrainer is a fakeTrainer that remembers the prior passed to each
// Fit call and can be told to fail warm fits.
type recordingTrainer struct {
	models   *core.Models
	failWarm bool

	mu     sync.Mutex
	priors []*core.Models
}

func (r *recordingTrainer) Fit(ctx context.Context, extra []core.Sample, prior *core.Models) (*core.Models, registry.Training, error) {
	r.mu.Lock()
	r.priors = append(r.priors, prior)
	r.mu.Unlock()
	if r.failWarm && prior != nil {
		return nil, registry.Training{}, fmt.Errorf("prior kernel mismatch")
	}
	return r.models, registry.Training{Observations: len(extra)}, nil
}

func (r *recordingTrainer) seen() []*core.Models {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*core.Models(nil), r.priors...)
}

// driveSampleCountRetrain pushes perfect observations until the sample-count
// policy triggers one synchronous retrain.
func driveSampleCountRetrain(t *testing.T, c *Controller) {
	t.Helper()
	for i := 0; i < 5; i++ {
		res, err := c.Observe(obs(1, 1))
		if err != nil {
			t.Fatal(err)
		}
		if res.RetrainStarted {
			return
		}
	}
	t.Fatal("sample-count policy never triggered")
}

func TestAutoRetrainWarmStarts(t *testing.T) {
	active := constModels(t, 1, 1)
	r := newRig(t, active, registry.Training{})
	tr := &recordingTrainer{models: constModels(t, 1, 1)}
	c := New(Config{Auto: true, Sync: true, RetrainEvery: 5}, r.deps(tr))

	driveSampleCountRetrain(t, c)

	priors := tr.seen()
	if len(priors) != 1 || priors[0] != active {
		t.Fatalf("trainer priors = %v, want exactly the active model set", priors)
	}
	st := c.Status().Retrain
	ws := st.LastWarmStart
	if ws == nil || !ws.Used {
		t.Fatalf("LastWarmStart = %+v, want Used", ws)
	}
	if ws.FromVersion != "v0001" {
		t.Errorf("FromVersion = %q, want v0001", ws.FromVersion)
	}
	if ws.Fallback != "" {
		t.Errorf("unexpected fallback %q", ws.Fallback)
	}
	// The published manifest records the provenance too.
	man, err := r.store.GetManifest("titanx", st.LastVersion)
	if err != nil {
		t.Fatal(err)
	}
	if man.Training.WarmStart == nil || man.Training.WarmStart.FromVersion != "v0001" {
		t.Errorf("manifest warm_start = %+v, want from_version v0001", man.Training.WarmStart)
	}
}

func TestManualRetrainAlwaysCold(t *testing.T) {
	r := newRig(t, constModels(t, 1, 1), registry.Training{})
	tr := &recordingTrainer{models: constModels(t, 1, 1)}
	c := New(Config{}, r.deps(tr))
	for i := 0; i < 4; i++ {
		if _, err := c.Observe(obs(1, 1)); err != nil {
			t.Fatal(err)
		}
	}

	st, err := c.Retrain(context.Background(), "manual test")
	if err != nil {
		t.Fatal(err)
	}
	if priors := tr.seen(); len(priors) != 1 || priors[0] != nil {
		t.Fatalf("manual retrain passed a prior: %v", priors)
	}
	ws := st.LastWarmStart
	if ws == nil || ws.Used || !strings.Contains(ws.Fallback, "manual retrains always fit cold") {
		t.Fatalf("LastWarmStart = %+v, want cold with the manual-retrain fallback", ws)
	}
	man, err := r.store.GetManifest("titanx", st.LastVersion)
	if err != nil {
		t.Fatal(err)
	}
	if man.Training.WarmStart != nil {
		t.Errorf("cold retrain published warm_start provenance: %+v", man.Training.WarmStart)
	}
}

func TestDisableWarmStartConfig(t *testing.T) {
	r := newRig(t, constModels(t, 1, 1), registry.Training{})
	tr := &recordingTrainer{models: constModels(t, 1, 1)}
	c := New(Config{Auto: true, Sync: true, RetrainEvery: 5, DisableWarmStart: true}, r.deps(tr))

	driveSampleCountRetrain(t, c)

	if priors := tr.seen(); len(priors) != 1 || priors[0] != nil {
		t.Fatalf("warm-disabled retrain passed a prior: %v", priors)
	}
	ws := c.Status().Retrain.LastWarmStart
	if ws == nil || ws.Used || ws.Fallback != "disabled by configuration" {
		t.Fatalf("LastWarmStart = %+v, want the disabled-by-configuration fallback", ws)
	}
}

func TestWarmFitFailureFallsBackCold(t *testing.T) {
	r := newRig(t, constModels(t, 1, 1), registry.Training{})
	tr := &recordingTrainer{models: constModels(t, 1, 1), failWarm: true}
	c := New(Config{Auto: true, Sync: true, RetrainEvery: 5, Cooldown: time.Hour}, r.deps(tr))

	driveSampleCountRetrain(t, c)

	priors := tr.seen()
	if len(priors) != 2 || priors[0] == nil || priors[1] != nil {
		t.Fatalf("want a warm attempt then a cold fallback, got priors %v", priors)
	}
	st := c.Status().Retrain
	if st.LastOutcome != OutcomeActivated {
		t.Fatalf("retrain outcome = %s (%s), want activated via cold fallback", st.LastOutcome, st.LastError)
	}
	ws := st.LastWarmStart
	if ws == nil || ws.Used || !strings.Contains(ws.Fallback, "warm fit failed") {
		t.Fatalf("LastWarmStart = %+v, want the warm-fit-failed fallback", ws)
	}
	man, err := r.store.GetManifest("titanx", st.LastVersion)
	if err != nil {
		t.Fatal(err)
	}
	if man.Training.WarmStart != nil {
		t.Errorf("cold-fallback retrain published warm_start provenance: %+v", man.Training.WarmStart)
	}
}
