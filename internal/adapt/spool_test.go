package adapt

import (
	"os"
	"path/filepath"
	"testing"
)

// TestSpoolMemoryMode pins the dirless fallback: a plain in-order queue.
func TestSpoolMemoryMode(t *testing.T) {
	s, err := OpenSpool("")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 5; i++ {
		if err := s.Enqueue(walObs(i)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Depth() != 5 {
		t.Fatalf("depth %d, want 5", s.Depth())
	}
	batch := s.Pending(3)
	if len(batch) != 3 || batch[0].Kernel != "k0" || batch[2].Kernel != "k2" {
		t.Fatalf("pending batch %v, want k0..k2 in order", batch)
	}
	if err := s.Ack(3); err != nil {
		t.Fatal(err)
	}
	rest := s.Pending(0)
	if len(rest) != 2 || rest[0].Kernel != "k3" {
		t.Fatalf("queue after ack %v, want k3,k4", rest)
	}
	st := s.Stats()
	if st.Depth != 2 || st.Enqueued != 5 || st.Flushed != 3 {
		t.Fatalf("stats %+v, want depth 2, enqueued 5, flushed 3", st)
	}
}

// TestSpoolPersistsAcrossReopen is the disk-backed contract: queued
// observations and the ack offset survive a process boundary, order
// intact.
func TestSpoolPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSpool(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := s.Enqueue(walObs(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Ack(2); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenSpool(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := s2.Pending(0)
	if len(got) != 4 {
		t.Fatalf("reopened spool holds %d observations, want 4", len(got))
	}
	for i, o := range got {
		if want := walObs(i + 2); o.Kernel != want.Kernel {
			t.Fatalf("position %d holds %s, want %s (order or ack offset lost)", i, o.Kernel, want.Kernel)
		}
	}
	if st := s2.Stats(); st.Enqueued != 6 || st.Flushed != 2 {
		t.Fatalf("stats after reopen %+v, want enqueued 6, flushed 2", st)
	}
}

// TestSpoolDrainCompacts proves a fully flushed spool leaves no disk
// footprint behind: the file is emptied and the ack offset removed.
func TestSpoolDrainCompacts(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSpool(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Enqueue(walObs(0), walObs(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Ack(2); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(filepath.Join(dir, spoolFile)); err != nil || fi.Size() != 0 {
		t.Fatalf("drained spool file not compacted: %v, %v", fi, err)
	}
	if _, err := os.Stat(filepath.Join(dir, ackFile)); !os.IsNotExist(err) {
		t.Fatal("drained spool left its ack file behind")
	}
	// The compacted spool must keep working.
	if err := s.Enqueue(walObs(2)); err != nil {
		t.Fatal(err)
	}
	if got := s.Pending(0); len(got) != 1 || got[0].Kernel != "k2" {
		t.Fatalf("queue after compaction %v, want just k2", got)
	}
}

// TestSpoolCorruptTailTruncated proves a torn last record (crash mid-write)
// costs only that record: the valid prefix replays.
func TestSpoolCorruptTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSpool(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Enqueue(walObs(0), walObs(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, spoolFile), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"kernel":"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := OpenSpool(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Pending(0); len(got) != 2 {
		t.Fatalf("recovered %d observations past a torn tail, want 2", len(got))
	}
	if !s2.Stats().Truncated {
		t.Fatal("stats do not report the truncation")
	}
}

// TestSpoolAckAheadOfLogClamped covers the crash window where the ack
// offset was committed but the tail it refers to was torn: the offset is
// clamped instead of panicking or going negative.
func TestSpoolAckAheadOfLogClamped(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSpool(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Enqueue(walObs(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, ackFile), []byte("999"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenSpool(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if d := s2.Depth(); d != 0 {
		t.Fatalf("depth %d with ack ahead of the log, want 0", d)
	}
	if err := s2.Enqueue(walObs(1)); err != nil {
		t.Fatal(err)
	}
	if d := s2.Depth(); d != 1 {
		t.Fatalf("depth %d after enqueue, want 1", d)
	}
}
