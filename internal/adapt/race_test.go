package adapt

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/registry"
)

// TestAutoRetrainUnderConcurrentPredictRace runs the real adaptation loop —
// engine-backed trainer, registry publication, hot-swap install — while
// prediction traffic keeps hitting the serving predictor. Run with -race
// this is the loop's concurrency check. The probe loops are paced with
// short sleeps so the single-vCPU CI runner cannot starve the background
// retrain past the test deadline.
func TestAutoRetrainUnderConcurrentPredictRace(t *testing.T) {
	eng := engine.NewDefault(engine.Options{
		Workers: 2,
		Core:    core.Options{SettingsPerKernel: 4},
	})
	kernels := engine.TrainingKernels()[:12]
	if _, err := eng.Train(context.Background(), kernels); err != nil {
		t.Fatal(err)
	}
	store, err := registry.Open("")
	if err != nil {
		t.Fatal(err)
	}
	serving := registry.NewServing()
	models := eng.Models()
	man, err := store.Save("titanx", "", models, registry.Training{})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Activate("titanx", man.Version); err != nil {
		t.Fatal(err)
	}
	install := func(version string, m *core.Models) error {
		if err := store.Activate("titanx", version); err != nil {
			return err
		}
		serving.Install(version, engine.NewPredictor(m, eng.Harness().Device().Sim().Ladder, eng.Options()))
		return nil
	}
	if err := install(man.Version, models); err != nil {
		t.Fatal(err)
	}

	c := New(Config{
		Auto:            true,
		MinSamples:      4,
		BaselineSpeedup: 0.01,
		BaselineEnergy:  0.01,
		Cooldown:        time.Hour, // exactly one background retrain
	}, Deps{
		Device: "titanx",
		Store:  store,
		Current: func() (*engine.Predictor, string, bool) {
			v, p, _, ok := serving.Current()
			return p, v, ok
		},
		Install: install,
		Trainer: NewEngineTrainer(eng, kernels),
	})

	// Concurrent predict traffic against the serving holder, paced so the
	// retrain goroutine gets scheduled on one vCPU.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var predictions atomic.Int64
	st := obs(0.5, 0.5).Features
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, pred, _, ok := serving.Current()
				if !ok {
					t.Error("serving lost its active version")
					return
				}
				pred.ParetoSet(st)
				predictions.Add(1)
				time.Sleep(3 * time.Millisecond)
			}
		}()
	}

	// Observations far from the model's predictions: drift triggers an
	// asynchronous retrain (Sync is false) that folds them in, publishes,
	// holdout-checks, and hot-swaps under the live predict load.
	var started bool
	for i := 0; i < 8; i++ {
		res, err := c.Observe(obs(0.5, 0.5))
		if err != nil {
			t.Fatal(err)
		}
		started = started || res.RetrainStarted
		time.Sleep(2 * time.Millisecond)
	}
	if !started {
		t.Fatal("drift did not start a background retrain")
	}

	deadline := time.Now().Add(2 * time.Minute)
	for {
		rs := c.Status().Retrain
		if rs.Retrains > 0 && !rs.InProgress {
			if rs.LastOutcome == OutcomeFailed {
				t.Fatalf("background retrain failed: %s", rs.LastError)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background retrain did not finish")
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if predictions.Load() == 0 {
		t.Fatal("no predictions served during the retrain")
	}

	// Whatever the holdout decided, serving must hold a consistent,
	// usable version.
	version, pred, _, ok := serving.Current()
	if !ok || version == "" {
		t.Fatal("no serving version after the retrain")
	}
	if set := pred.ParetoSet(st); len(set) == 0 {
		t.Fatal("serving predictor returned an empty Pareto set")
	}
}
