package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/freq"
	"repro/internal/measure"
	"repro/internal/pareto"
)

// Fig8Data is the Pareto evaluation of one benchmark: the measured sweep,
// the real Pareto front over it, and the predicted Pareto set with each
// predicted configuration evaluated at its *measured* objectives (the
// paper's red crosses, which "are not necessarily dominant each other").
type Fig8Data struct {
	Benchmark string
	// Model records which model version produced the prediction.
	Model Provenance
	// Measured is the full measured sweep (all actual configurations).
	Measured []measure.Relative
	// RealFront is the measured Pareto-optimal set P*.
	RealFront []pareto.Point
	// Predicted is the predicted set P' at measured objective values,
	// in predicted-set order; IDs index into Measured.
	Predicted []pareto.Point
	// PredictedCfgs are the corresponding configurations (parallel to
	// Predicted), with the mem-L heuristic point last.
	PredictedCfgs []core.Prediction
}

// Fig8 reproduces Fig. 8 for all twelve test benchmarks.
func (s *Suite) Fig8() ([]Fig8Data, error) {
	pred, err := s.Predictor()
	if err != nil {
		return nil, err
	}
	prov, err := s.Provenance()
	if err != nil {
		return nil, err
	}
	var out []Fig8Data
	for _, b := range bench.All() {
		d, err := s.fig8One(pred, b)
		if err != nil {
			return nil, err
		}
		d.Model = prov
		out = append(out, d)
	}
	return out, nil
}

func (s *Suite) fig8One(pred *engine.Predictor, b *bench.Benchmark) (Fig8Data, error) {
	// The paper evaluates predictions and the real front on the sampled
	// configuration subset, not the exhaustive space (Section 4.5); this
	// is what bounds |P*| to 6–14 and |P'| to 9–12 in Table 2.
	ladder := s.Harness().Device().Sim().Ladder
	sampled := ladder.TrainingSample(40)
	sampledSet := map[freq.Config]bool{}
	for _, c := range sampled {
		sampledSet[c] = true
	}

	all, err := s.Sweep(b.Name)
	if err != nil {
		return Fig8Data{}, err
	}
	var rels []measure.Relative
	for _, r := range all {
		if sampledSet[r.Config] {
			rels = append(rels, r)
		}
	}
	byCfg := map[freq.Config]int{}
	pts := make([]pareto.Point, len(rels))
	for i, r := range rels {
		byCfg[r.Config] = i
		pts[i] = pareto.Point{Speedup: r.Speedup, Energy: r.NormEnergy, ID: i}
	}
	real := pareto.Fast(pts)

	set := pred.ParetoSetOver(b.Features(), sampled)
	var predicted []pareto.Point
	var cfgs []core.Prediction
	for _, p := range set {
		idx, ok := byCfg[p.Config]
		if !ok {
			// The predictor only emits ladder configurations; a miss
			// would be a programming error worth surfacing.
			return Fig8Data{}, fmt.Errorf("experiments: predicted config %v not in sweep of %s",
				p.Config, b.Name)
		}
		m := rels[idx]
		predicted = append(predicted, pareto.Point{
			Speedup: m.Speedup, Energy: m.NormEnergy, ID: idx,
		})
		cfgs = append(cfgs, p)
	}
	return Fig8Data{
		Benchmark:     b.Name,
		Measured:      rels,
		RealFront:     real,
		Predicted:     predicted,
		PredictedCfgs: cfgs,
	}, nil
}

// RenderFig8 prints, per benchmark, the real front and the predicted set.
func RenderFig8(w io.Writer, data []Fig8Data) {
	fmt.Fprintln(w, "Figure 8: accuracy of the predicted Pareto front")
	if len(data) > 0 {
		fmt.Fprintf(w, "  model: %s\n", data[0].Model)
	}
	for _, d := range data {
		fmt.Fprintf(w, "  %s: real front %d points, predicted set %d points\n",
			d.Benchmark, len(d.RealFront), len(d.Predicted))
		fmt.Fprintf(w, "    real Pareto front P*:\n")
		for _, p := range d.RealFront {
			fmt.Fprintf(w, "      %-11s speedup %6.3f  energy %6.3f\n",
				d.Measured[p.ID].Config, p.Speedup, p.Energy)
		}
		fmt.Fprintf(w, "    predicted set P' (measured objectives):\n")
		for i, p := range d.Predicted {
			tag := ""
			if d.PredictedCfgs[i].MemLHeuristic {
				tag = "  [mem-L heuristic]"
			}
			fmt.Fprintf(w, "      %-11s speedup %6.3f  energy %6.3f%s\n",
				d.PredictedCfgs[i].Config, p.Speedup, p.Energy, tag)
		}
	}
}

// Table2Row is one row of Table 2.
type Table2Row struct {
	Benchmark string
	// D is the binary-hypervolume coverage difference D(P*, P').
	D float64
	// NPred and NReal are |P'| and |P*|.
	NPred, NReal int
	// Extreme-point distances (Δspeedup, Δenergy) for the max-speedup and
	// min-energy points.
	MaxSpeedupDS, MaxSpeedupDE float64
	MinEnergyDS, MinEnergyDE   float64
}

// Table2Report is the whole of Table 2: its rows plus the provenance of
// the model version that produced them.
type Table2Report struct {
	// Model records which model version produced the table.
	Model Provenance
	Rows  []Table2Row
}

// Table2 reproduces Table 2 from the Fig. 8 data, sorted by ascending
// coverage difference as in the paper.
func (s *Suite) Table2() (Table2Report, error) {
	data, err := s.Fig8()
	if err != nil {
		return Table2Report{}, err
	}
	return Table2From(data), nil
}

// Table2From derives the Table 2 report from precomputed Fig. 8 data.
func Table2From(data []Fig8Data) Table2Report {
	rep := Table2Report{}
	if len(data) > 0 {
		rep.Model = data[0].Model
	}
	for _, d := range data {
		row := Table2Row{
			Benchmark: d.Benchmark,
			D:         pareto.CoverageDifference(d.RealFront, d.Predicted),
			NPred:     len(d.Predicted),
			NReal:     len(d.RealFront),
		}
		if ed, ok := pareto.ExtremesDistance(d.RealFront, d.Predicted); ok {
			row.MaxSpeedupDS, row.MaxSpeedupDE = ed.MaxSpeedupDS, ed.MaxSpeedupDE
			row.MinEnergyDS, row.MinEnergyDE = ed.MinEnergyDS, ed.MinEnergyDE
		}
		rep.Rows = append(rep.Rows, row)
	}
	sort.Slice(rep.Rows, func(i, j int) bool { return rep.Rows[i].D < rep.Rows[j].D })
	return rep
}

// RenderTable2 prints Table 2 in the paper's layout.
func RenderTable2(w io.Writer, rep Table2Report) {
	fmt.Fprintln(w, "Table 2: evaluation of predicted Pareto fronts")
	fmt.Fprintf(w, "  model: %s\n", rep.Model)
	fmt.Fprintf(w, "  %-15s %9s %5s %5s %18s %18s\n",
		"benchmark", "D(P*,P')", "|P'|", "|P*|", "max-speedup dist", "min-energy dist")
	for _, r := range rep.Rows {
		fmt.Fprintf(w, "  %-15s %9.4f %5d %5d   (%5.3f, %5.3f)   (%5.3f, %5.3f)\n",
			r.Benchmark, r.D, r.NPred, r.NReal,
			r.MaxSpeedupDS, r.MaxSpeedupDE, r.MinEnergyDS, r.MinEnergyDE)
	}
}
