package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/bench"
	"repro/internal/freq"
)

// BoxStats summarizes an error distribution the way the paper's box plots
// do: minimum, 25th percentile, median, 75th percentile and maximum, in
// percentage points of the predicted quantity.
type BoxStats struct {
	Min, Q25, Median, Q75, Max float64
	N                          int
}

func boxStats(errs []float64) BoxStats {
	if len(errs) == 0 {
		return BoxStats{}
	}
	s := append([]float64(nil), errs...)
	sort.Float64s(s)
	q := func(p float64) float64 {
		idx := p * float64(len(s)-1)
		lo := int(idx)
		hi := lo + 1
		if hi >= len(s) {
			return s[len(s)-1]
		}
		frac := idx - float64(lo)
		return s[lo]*(1-frac) + s[hi]*frac
	}
	return BoxStats{
		Min: s[0], Q25: q(0.25), Median: q(0.5), Q75: q(0.75), Max: s[len(s)-1],
		N: len(s),
	}
}

// ErrorReport is the per-memory-frequency prediction-error analysis used by
// Fig. 6 (speedup) and Fig. 7 (normalized energy).
type ErrorReport struct {
	// Objective is "speedup" or "energy".
	Objective string
	// Model records which model version produced the table.
	Model Provenance
	// Mems holds the memory clocks in figure order (H, h, l, L).
	Mems []freq.MHz
	// RMSE maps memory clock to the root-mean-square error in percentage
	// points over all benchmarks and sampled configurations.
	RMSE map[freq.MHz]float64
	// PerBenchmark maps memory clock -> benchmark name -> box stats of
	// the per-configuration errors (percentage points).
	PerBenchmark map[freq.MHz]map[string]BoxStats
}

// predictionErrors measures every test benchmark at the sampled settings
// and collects prediction errors in percentage points, grouped by memory
// clock and benchmark.
func (s *Suite) predictionErrors() (speedupErrs, energyErrs map[freq.MHz]map[string][]float64, err error) {
	pred, err := s.Predictor()
	if err != nil {
		return nil, nil, err
	}
	ladder := s.Harness().Device().Sim().Ladder
	settings := ladder.TrainingSample(40)
	speedupErrs = map[freq.MHz]map[string][]float64{}
	energyErrs = map[freq.MHz]map[string][]float64{}
	for _, b := range bench.All() {
		st := b.Features()
		base, err := s.Harness().Baseline(b.Profile())
		if err != nil {
			return nil, nil, err
		}
		for _, cfg := range settings {
			rel, err := s.Harness().MeasureRelative(b.Profile(), cfg, base)
			if err != nil {
				return nil, nil, err
			}
			p := pred.PredictConfig(st, cfg)
			addErr(speedupErrs, cfg.Mem, b.Name, 100*(p.Speedup-rel.Speedup))
			addErr(energyErrs, cfg.Mem, b.Name, 100*(p.NormEnergy-rel.NormEnergy))
		}
	}
	return speedupErrs, energyErrs, nil
}

func addErr(m map[freq.MHz]map[string][]float64, mem freq.MHz, name string, e float64) {
	if m[mem] == nil {
		m[mem] = map[string][]float64{}
	}
	m[mem][name] = append(m[mem][name], e)
}

func buildReport(objective string, errs map[freq.MHz]map[string][]float64) ErrorReport {
	rep := ErrorReport{
		Objective:    objective,
		RMSE:         map[freq.MHz]float64{},
		PerBenchmark: map[freq.MHz]map[string]BoxStats{},
	}
	for _, m := range []freq.MHz{freq.MemH, freq.Memh, freq.Meml, freq.MemL} {
		if errs[m] == nil {
			continue
		}
		rep.Mems = append(rep.Mems, m)
		rep.PerBenchmark[m] = map[string]BoxStats{}
		sum, n := 0.0, 0
		for name, es := range errs[m] {
			rep.PerBenchmark[m][name] = boxStats(es)
			for _, e := range es {
				sum += e * e
				n++
			}
		}
		rep.RMSE[m] = math.Sqrt(sum / float64(n))
	}
	return rep
}

// fig67 computes both error reports with a single measurement pass.
func (s *Suite) fig67() (speedup, energy ErrorReport, err error) {
	se, ee, err := s.predictionErrors()
	if err != nil {
		return ErrorReport{}, ErrorReport{}, err
	}
	prov, err := s.Provenance()
	if err != nil {
		return ErrorReport{}, ErrorReport{}, err
	}
	sp, en := buildReport("speedup", se), buildReport("energy", ee)
	sp.Model, en.Model = prov, prov
	return sp, en, nil
}

// Fig6 reproduces Fig. 6: speedup prediction error by memory frequency.
func (s *Suite) Fig6() (ErrorReport, error) {
	sp, _, err := s.fig67()
	return sp, err
}

// Fig7 reproduces Fig. 7: normalized-energy prediction error by memory
// frequency.
func (s *Suite) Fig7() (ErrorReport, error) {
	_, en, err := s.fig67()
	return en, err
}

// RenderErrorReport prints an error report in the paper's Fig. 6/7 layout:
// one block per memory frequency with its RMSE and per-benchmark box stats.
func RenderErrorReport(w io.Writer, figure string, rep ErrorReport) {
	fmt.Fprintf(w, "%s: prediction error of %s\n", figure, rep.Objective)
	fmt.Fprintf(w, "  model: %s\n", rep.Model)
	for _, m := range rep.Mems {
		fmt.Fprintf(w, "  Memory Frequency: %d MHz (%s)   RMSE = %.2f%%\n",
			m, freq.MemLabel(m), rep.RMSE[m])
		fmt.Fprintf(w, "    %-15s %8s %8s %8s %8s %8s\n",
			"benchmark", "min", "q25", "median", "q75", "max")
		for _, name := range bench.Names() {
			bs, ok := rep.PerBenchmark[m][name]
			if !ok {
				continue
			}
			fmt.Fprintf(w, "    %-15s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
				name, bs.Min, bs.Q25, bs.Median, bs.Q75, bs.Max)
		}
	}
}
