package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
)

func TestBudgetEvalBothDevices(t *testing.T) {
	tables, err := BudgetEval(engine.Options{Core: core.Options{SettingsPerKernel: 10}})
	if err != nil {
		t.Fatalf("BudgetEval: %v", err)
	}
	if len(tables) != 2 {
		t.Fatalf("tables = %d, want 2 (Titan X, P100)", len(tables))
	}
	wantPoints := len(budgetEvalUnits) * len(budgetEvalFractions)
	for _, tbl := range tables {
		if tbl.Device == "" {
			t.Error("table without device name")
		}
		if len(tbl.Points) != wantPoints {
			t.Errorf("%s: points = %d, want %d", tbl.Device, len(tbl.Points), wantPoints)
		}
		// The acceptance bar: the governor's predicted fleet speedup is at
		// least both baselines' at every tested budget on every profile.
		if !tbl.GovernorDominates() {
			t.Errorf("%s: governor lost to a baseline at some budget point", tbl.Device)
		}
		for _, pt := range tbl.Points {
			if len(pt.Arms) != 3 {
				t.Fatalf("%s %s %.3f: arms = %d, want 3", tbl.Device, pt.Unit, pt.Budget, len(pt.Arms))
			}
			var gov, uni, per *BudgetEvalArm
			for i := range pt.Arms {
				switch pt.Arms[i].Name {
				case "governor":
					gov = &pt.Arms[i]
				case "uniform-cap":
					uni = &pt.Arms[i]
				case "per-device-greedy":
					per = &pt.Arms[i]
				}
			}
			if gov == nil || uni == nil || per == nil {
				t.Fatalf("%s %s %.3f: missing arm in %+v", tbl.Device, pt.Unit, pt.Budget, pt.Arms)
			}
			if gov.PredictedSpeedup < uni.PredictedSpeedup-1e-9 ||
				gov.PredictedSpeedup < per.PredictedSpeedup-1e-9 {
				t.Errorf("%s %s budget %.3f: governor %.6f < baseline (uniform %.6f, per-device %.6f)",
					tbl.Device, pt.Unit, pt.Budget, gov.PredictedSpeedup, uni.PredictedSpeedup, per.PredictedSpeedup)
			}
			for _, a := range pt.Arms {
				if a.Feasible && a.Cost > pt.Budget*(1+1e-9) {
					t.Errorf("%s %s budget %.3f: %s feasible but over budget: cost %.6f",
						tbl.Device, pt.Unit, pt.Budget, a.Name, a.Cost)
				}
				if a.MeasuredSpeedup <= 0 || a.MeasuredCost <= 0 {
					t.Errorf("%s %s budget %.3f: %s non-positive measured objectives: %+v",
						tbl.Device, pt.Unit, pt.Budget, a.Name, a)
				}
			}
		}
	}

	var buf bytes.Buffer
	RenderBudgetEval(&buf, tables)
	out := buf.String()
	for _, tbl := range tables {
		if !strings.Contains(out, tbl.Device) {
			t.Errorf("RenderBudgetEval missing device %q", tbl.Device)
		}
	}
	for _, arm := range []string{"governor", "uniform-cap", "per-device-greedy"} {
		if !strings.Contains(out, arm) {
			t.Errorf("RenderBudgetEval missing arm %q", arm)
		}
	}
	if !strings.Contains(out, "governor ≥ both baselines") {
		t.Error("RenderBudgetEval missing dominance verdict line")
	}
}
