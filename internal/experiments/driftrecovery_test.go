package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestAdaptRecovery pins the drift-recovery acceptance criteria: the
// synthetic workload shift must push prediction error visibly up, the
// detector must fire and auto-retrain, the candidate must pass the holdout
// check, and the recovered error must land within 1.2× of the pre-shift
// error.
func TestAdaptRecovery(t *testing.T) {
	s := NewSuiteWithOptions(core.Options{SettingsPerKernel: 8})
	rep, err := s.AdaptRecovery()
	if err != nil {
		t.Fatalf("AdaptRecovery: %v", err)
	}
	if len(rep.Phases) != 4 {
		t.Fatalf("phases = %d, want 4", len(rep.Phases))
	}
	pre, noAdapt, shifted, recovered := rep.Phases[0], rep.Phases[1], rep.Phases[2], rep.Phases[3]

	if pre.PooledRMSE <= 0 {
		t.Fatalf("pre-shift RMSE not measured: %+v", pre)
	}
	// The injected shift must actually hurt the frozen model: the
	// counterfactual error must sit well above the pre-shift error, or
	// the experiment demonstrates nothing.
	if noAdapt.PooledRMSE < 1.15*pre.PooledRMSE {
		t.Errorf("shift too mild: no-adapt %.4f vs pre-shift %.4f", noAdapt.PooledRMSE, pre.PooledRMSE)
	}
	if !rep.DriftDetected {
		t.Fatal("drift not detected during the shifted phase")
	}
	if rep.Activated == 0 {
		t.Fatalf("no retrain was activated: %+v", rep)
	}
	if rep.Holdout.Samples == 0 {
		t.Fatalf("holdout: %+v", rep.Holdout)
	}
	if rep.FinalVersion == pre.ModelVersion {
		t.Fatal("recovered phase served the pre-shift model: no hot-swap happened")
	}

	// The acceptance criterion: error back within 1.2× of pre-shift.
	if rep.RecoveryRatio > 1.2 {
		t.Errorf("recovery ratio %.3f, want <= 1.2 (pre %.4f, recovered %.4f)",
			rep.RecoveryRatio, pre.PooledRMSE, recovered.PooledRMSE)
	}
	// And recovery must be a real improvement over the no-adaptation
	// counterfactual.
	if recovered.PooledRMSE >= noAdapt.PooledRMSE {
		t.Errorf("no recovery: recovered %.4f >= no-adapt %.4f", recovered.PooledRMSE, noAdapt.PooledRMSE)
	}
	// The live shifted phase (retrains included) must not be materially
	// worse than the counterfactual: an early retrain on a mixed window
	// may transiently cost a little, but never much.
	if shifted.PooledRMSE > 1.15*noAdapt.PooledRMSE {
		t.Errorf("live shifted phase %.4f much worse than the frozen counterfactual %.4f",
			shifted.PooledRMSE, noAdapt.PooledRMSE)
	}

	var buf bytes.Buffer
	RenderAdaptReport(&buf, rep)
	out := buf.String()
	for _, want := range []string{"pre-shift", "no-adapt", "shifted", "recovered", "drift detected", "recovery ratio", rep.FinalVersion} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderAdaptReport missing %q:\n%s", want, out)
		}
	}
}
