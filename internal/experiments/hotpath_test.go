package experiments

import (
	"strings"
	"testing"
)

// TestHotPathReport smoke-tests the serve-hot-path table on the shared
// small suite: every layer is present, costs are positive, and the
// publish-time front table beats the live decision paths.
func TestHotPathReport(t *testing.T) {
	s := suite(t)
	rep, err := s.HotPath()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kernels != 106 || rep.Configs == 0 {
		t.Fatalf("unexpected shape: %d kernels, %d configs", rep.Kernels, rep.Configs)
	}
	want := []string{"front table", "sweep LRU", "warm config LRU", "per-kernel sweep", "columnar batch"}
	if len(rep.Rows) != len(want) {
		t.Fatalf("%d rows, want %d", len(rep.Rows), len(want))
	}
	byLayer := map[string]HotPathRow{}
	for i, row := range rep.Rows {
		if row.Layer != want[i] {
			t.Fatalf("row %d is %q, want %q", i, row.Layer, want[i])
		}
		if row.NsPerKernel <= 0 || row.KernelsPerSec <= 0 {
			t.Fatalf("row %q has non-positive cost: %+v", row.Layer, row)
		}
		byLayer[row.Layer] = row
	}
	// The front table must be cheaper than every path that still sweeps.
	for _, layer := range []string{"warm config LRU", "per-kernel sweep", "columnar batch"} {
		if byLayer["front table"].NsPerKernel >= byLayer[layer].NsPerKernel {
			t.Errorf("front table (%.0f ns) not cheaper than %s (%.0f ns)",
				byLayer["front table"].NsPerKernel, layer, byLayer[layer].NsPerKernel)
		}
	}
	// The columnar batch must beat the row-at-a-time uncached sweep.
	if byLayer["columnar batch"].NsPerKernel >= byLayer["per-kernel sweep"].NsPerKernel {
		t.Errorf("columnar batch (%.0f ns/kernel) not cheaper than per-kernel sweep (%.0f ns/kernel)",
			byLayer["columnar batch"].NsPerKernel, byLayer["per-kernel sweep"].NsPerKernel)
	}

	var b strings.Builder
	RenderHotPath(&b, rep)
	out := b.String()
	for _, wantStr := range []string{"Serve hot path", "front table", "columnar batch", "kernels/s"} {
		if !strings.Contains(out, wantStr) {
			t.Errorf("rendered report missing %q:\n%s", wantStr, out)
		}
	}
}
