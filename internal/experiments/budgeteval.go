package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/bench"
	"repro/internal/budget"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/freq"
	"repro/internal/gpu"
	"repro/internal/measure"
	"repro/internal/nvml"
)

// The budget experiment evaluates the fleet energy-budget governor
// (internal/budget) end to end on both GPU profiles: a synthetic fleet of
// nodes with distinct kernel mixes, per-kernel Pareto fronts predicted by
// a freshly trained engine, and a sweep of budget totals from tight to
// unconstrained. At every budget point the governor (best-of-three) is
// compared against its two baselines — uniform-cap and per-device-greedy —
// on the allocator's own objective (predicted fleet speedup) and on the
// *measured* objectives of the chosen configurations, the same
// predicted-vs-measured discipline as the policy evaluation.

// budgetEvalNodes is how many synthetic nodes the fleet holds; each node
// runs a disjoint slice of the twelve test benchmarks with a skewed mix.
const budgetEvalNodes = 4

// budgetEvalFractions are the evaluated budget totals as fractions of the
// fleet's default-clock cost (= node count, since one default-clock node
// costs 1.0 in either unit). The low end is deliberately below typical
// floor costs to exercise the infeasible path.
var budgetEvalFractions = []float64{0.6, 0.75, 0.9, 1.0}

// budgetEvalUnits are the budget units the sweep covers.
var budgetEvalUnits = []string{budget.UnitPower, budget.UnitEnergy}

// BudgetEvalArm is one solver's result at one budget point.
type BudgetEvalArm struct {
	// Name is the arm label: "governor", "uniform-cap" or
	// "per-device-greedy". Strategy is the internal strategy that produced
	// the allocation — for the governor, whichever of its three arms won.
	Name     string
	Strategy string
	Feasible bool
	// PredictedSpeedup and Cost are the plan's objective and budgeted
	// total (predicted, what the allocator optimizes).
	PredictedSpeedup float64
	Cost             float64
	// MeasuredSpeedup and MeasuredCost re-score the chosen configurations
	// at their measured objectives.
	MeasuredSpeedup float64
	MeasuredCost    float64
}

// BudgetEvalPoint is one (unit, budget total) evaluation: the three arms
// side by side.
type BudgetEvalPoint struct {
	Unit     string
	Fraction float64
	Budget   float64
	Arms     []BudgetEvalArm
}

// BudgetEvalTable is one device's full budget sweep.
type BudgetEvalTable struct {
	Device string
	// Model records which model version produced the fronts.
	Model Provenance
	// Nodes and Kernels describe the synthetic fleet; DefaultCost is the
	// fleet's cost at default clocks (the fraction denominator).
	Nodes       int
	Kernels     int
	DefaultCost float64
	Points      []BudgetEvalPoint
}

// budgetEvalFleet builds the synthetic fleet: each node gets three
// consecutive test benchmarks with a 0.5/0.3/0.2 mix, so mixes are
// skewed, disjoint across nodes, and each node's weights sum to 1.
func budgetEvalFleet(fronts map[string][]core.Prediction) []budget.Item {
	benches := bench.All()
	weights := []float64{0.5, 0.3, 0.2}
	var items []budget.Item
	for n := 0; n < budgetEvalNodes; n++ {
		node := fmt.Sprintf("node-%c", 'a'+n)
		for j, w := range weights {
			b := benches[(n*len(weights)+j)%len(benches)]
			items = append(items, budget.Item{
				Node:   node,
				Kernel: b.Name,
				Weight: w,
				Front:  fronts[b.Name],
			})
		}
	}
	return items
}

// BudgetEval runs the budget-governor evaluation on both GPU profiles,
// training a fresh engine per device with the given options.
func BudgetEval(opts engine.Options) ([]BudgetEvalTable, error) {
	var out []BudgetEvalTable
	for _, dev := range []*gpu.Device{gpu.TitanX(), gpu.P100()} {
		tbl, err := BudgetEvalForDevice(dev, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, tbl)
	}
	return out, nil
}

// BudgetEvalForDevice trains on the given device, predicts every test
// benchmark's Pareto front over the paper's 40-setting evaluation sample,
// and sweeps the budget grid with all three solvers.
func BudgetEvalForDevice(dev *gpu.Device, opts engine.Options) (BudgetEvalTable, error) {
	h := measure.NewHarness(nvml.NewDevice(dev))
	eng := engine.New(h, opts)
	if _, err := eng.Train(context.Background(), TrainingKernels()); err != nil {
		return BudgetEvalTable{}, fmt.Errorf("experiments: budget eval training on %s: %w", dev.Name, err)
	}
	pred, err := eng.Predictor()
	if err != nil {
		return BudgetEvalTable{}, err
	}
	prov, err := ProvenanceFor(dev.Name, eng.Models(), "")
	if err != nil {
		return BudgetEvalTable{}, err
	}
	sampled := dev.Ladder.TrainingSample(40)

	// Predicted fronts and measured ground truth per benchmark. Chosen
	// configurations always come from the sampled sweep, so measuring the
	// sample once per benchmark covers every lookup below.
	fronts := make(map[string][]core.Prediction, len(bench.All()))
	measured := make(map[string]map[freq.Config]measure.Relative, len(bench.All()))
	for _, b := range bench.All() {
		fronts[b.Name] = pred.ParetoSetOver(b.Features(), sampled)
		base, err := h.Baseline(b.Profile())
		if err != nil {
			return BudgetEvalTable{}, err
		}
		m := make(map[freq.Config]measure.Relative, len(sampled))
		for _, cfg := range sampled {
			rel, err := h.MeasureRelative(b.Profile(), cfg, base)
			if err != nil {
				return BudgetEvalTable{}, err
			}
			m[cfg] = rel
		}
		measured[b.Name] = m
	}

	items := budgetEvalFleet(fronts)
	kernels := make(map[string]bool)
	defaultCost := 0.0
	for _, it := range items {
		kernels[it.Kernel] = true
		defaultCost += it.Weight // default clocks: speedup = energy = 1
	}

	tbl := BudgetEvalTable{
		Device:      dev.Name,
		Model:       prov,
		Nodes:       budgetEvalNodes,
		Kernels:     len(kernels),
		DefaultCost: defaultCost,
	}
	arms := []struct {
		name  string
		solve func([]budget.Item, budget.Budget) (budget.Plan, error)
	}{
		{"governor", budget.Solve},
		{"uniform-cap", budget.SolveUniform},
		{"per-device-greedy", budget.SolvePerDevice},
	}
	for _, unit := range budgetEvalUnits {
		for _, frac := range budgetEvalFractions {
			b := budget.Budget{Total: frac * defaultCost, Unit: unit}
			pt := BudgetEvalPoint{Unit: unit, Fraction: frac, Budget: b.Total}
			for _, arm := range arms {
				plan, err := arm.solve(items, b)
				if err != nil {
					return BudgetEvalTable{}, fmt.Errorf("experiments: %s budget %s %.3g %s: %w",
						dev.Name, unit, b.Total, arm.name, err)
				}
				a := BudgetEvalArm{
					Name:             arm.name,
					Strategy:         plan.Strategy,
					Feasible:         plan.Feasible,
					PredictedSpeedup: plan.FleetSpeedup,
					Cost:             plan.Cost,
				}
				for _, alloc := range plan.Allocations {
					rel, ok := measured[alloc.Kernel][alloc.Chosen.Config]
					if !ok {
						return BudgetEvalTable{}, fmt.Errorf("experiments: chosen config %v for %s not in sampled sweep",
							alloc.Chosen.Config, alloc.Kernel)
					}
					a.MeasuredSpeedup += alloc.Weight * rel.Speedup
					cost := rel.NormEnergy
					if unit == budget.UnitPower {
						cost *= rel.Speedup
					}
					a.MeasuredCost += alloc.Weight * cost
				}
				pt.Arms = append(pt.Arms, a)
			}
			tbl.Points = append(tbl.Points, pt)
		}
	}
	return tbl, nil
}

// GovernorDominates reports whether the governor's predicted fleet speedup
// is at least both baselines' at every budget point of the table — the
// allocator's best-of-three guarantee, checked empirically end to end.
func (t BudgetEvalTable) GovernorDominates() bool {
	for _, pt := range t.Points {
		var gov float64
		for _, a := range pt.Arms {
			if a.Name == "governor" {
				gov = a.PredictedSpeedup
			}
		}
		for _, a := range pt.Arms {
			if a.Name != "governor" && a.PredictedSpeedup > gov+1e-9 {
				return false
			}
		}
	}
	return true
}

// RenderBudgetEval prints the budget sweep for every evaluated device.
func RenderBudgetEval(w io.Writer, tables []BudgetEvalTable) {
	fmt.Fprintln(w, "Fleet budget governor: predicted and measured fleet speedup vs baselines")
	for _, tbl := range tables {
		fmt.Fprintf(w, "  %s — %d nodes, %d kernels, default-clock cost %.2f\n",
			tbl.Device, tbl.Nodes, tbl.Kernels, tbl.DefaultCost)
		fmt.Fprintf(w, "  model: %s\n", tbl.Model)
		fmt.Fprintf(w, "  %-7s %8s  %-18s %9s %9s %9s %9s  %s\n",
			"unit", "budget", "arm", "pred spd", "cost", "meas spd", "meas cost", "")
		for _, pt := range tbl.Points {
			for i, a := range pt.Arms {
				unit, bud := "", ""
				if i == 0 {
					unit = pt.Unit
					bud = fmt.Sprintf("%.3f", pt.Budget)
				}
				note := ""
				if !a.Feasible {
					note = "[infeasible: floor]"
				} else if a.Name == "governor" {
					note = "via " + a.Strategy
				}
				fmt.Fprintf(w, "  %-7s %8s  %-18s %9.4f %9.4f %9.4f %9.4f  %s\n",
					unit, bud, a.Name, a.PredictedSpeedup, a.Cost, a.MeasuredSpeedup, a.MeasuredCost, note)
			}
		}
		verdict := "yes"
		if !tbl.GovernorDominates() {
			verdict = "NO — best-of-three violated"
		}
		fmt.Fprintf(w, "  governor ≥ both baselines at every budget point (%s): %s\n", tbl.Device, verdict)
	}
}
