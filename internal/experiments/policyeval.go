package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/freq"
	"repro/internal/gpu"
	"repro/internal/measure"
	"repro/internal/nvml"
	"repro/internal/policy"
)

// PolicyEvalRow evaluates one (policy, benchmark) pair on one device: the
// governor's chosen configuration scored at its *measured* objectives,
// against the oracle — the configuration the same policy would pick given
// perfect knowledge of the measured sweep. The gap between the two is the
// price of deciding from static features alone.
type PolicyEvalRow struct {
	Policy    string
	Benchmark string
	// Chosen is the governor's pick (from predicted objectives only) and
	// its measured speedup/normalized energy.
	Chosen        freq.Config
	ChosenSpeedup float64
	ChosenEnergy  float64
	// Feasible reports the governor's constraint feasibility claim.
	Feasible bool
	// Oracle is the policy resolved over measured objectives, with its
	// measured speedup/normalized energy.
	Oracle        freq.Config
	OracleSpeedup float64
	OracleEnergy  float64
}

// PolicyEvalTable is the policy evaluation of one device across the twelve
// test benchmarks and every built-in policy.
type PolicyEvalTable struct {
	Device string
	// Model records which model version produced the governor's decisions.
	Model Provenance
	Rows  []PolicyEvalRow
}

// policyEvalSpecs are the specs the evaluation sweeps: every built-in at
// its documented defaults.
func policyEvalSpecs() []policy.Spec {
	infos := policy.Builtins()
	specs := make([]policy.Spec, len(infos))
	for i, info := range infos {
		specs[i] = policy.Spec{Name: info.Name}
	}
	return specs
}

// PolicyEval runs the policy evaluation on both GPU profiles (Titan X and
// P100), training a fresh engine per device with the given options. Both
// the governor and the oracle choose over the paper's 40-setting
// evaluation sample, matching the Fig. 8 / Table 2 methodology.
func PolicyEval(opts engine.Options) ([]PolicyEvalTable, error) {
	var out []PolicyEvalTable
	for _, dev := range []*gpu.Device{gpu.TitanX(), gpu.P100()} {
		tbl, err := PolicyEvalForDevice(dev, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, tbl)
	}
	return out, nil
}

// PolicyEvalForDevice trains on the given device and evaluates every
// built-in policy across the twelve test benchmarks.
func PolicyEvalForDevice(dev *gpu.Device, opts engine.Options) (PolicyEvalTable, error) {
	h := measure.NewHarness(nvml.NewDevice(dev))
	eng := engine.New(h, opts)
	if _, err := eng.Train(context.Background(), TrainingKernels()); err != nil {
		return PolicyEvalTable{}, fmt.Errorf("experiments: policy eval training on %s: %w", dev.Name, err)
	}
	pred, err := eng.Predictor()
	if err != nil {
		return PolicyEvalTable{}, err
	}
	gov := policy.NewGovernor(pred, 0)
	sampled := dev.Ladder.TrainingSample(40)
	specs := policyEvalSpecs()

	prov, err := ProvenanceFor(dev.Name, eng.Models(), "")
	if err != nil {
		return PolicyEvalTable{}, err
	}
	tbl := PolicyEvalTable{Device: dev.Name, Model: prov}
	for _, b := range bench.All() {
		st := b.Features()
		base, err := h.Baseline(b.Profile())
		if err != nil {
			return PolicyEvalTable{}, err
		}
		// Measure the sampled settings once per benchmark; the governor's
		// choice is looked up here, and the oracle chooses over exactly
		// this measured set.
		measured := make(map[freq.Config]measure.Relative, len(sampled))
		oracleSet := make([]core.Prediction, 0, len(sampled))
		for _, cfg := range sampled {
			rel, err := h.MeasureRelative(b.Profile(), cfg, base)
			if err != nil {
				return PolicyEvalTable{}, err
			}
			measured[cfg] = rel
			oracleSet = append(oracleSet, core.Prediction{
				Config:     cfg,
				Speedup:    rel.Speedup,
				NormEnergy: rel.NormEnergy,
			})
		}
		for _, spec := range specs {
			d, err := gov.DecideOver(st, sampled, spec)
			if err != nil {
				return PolicyEvalTable{}, fmt.Errorf("experiments: %s/%s/%s: %w", dev.Name, b.Name, spec.Name, err)
			}
			// Choose's contract takes a Pareto set; feeding it the raw sweep
			// would skew the balanced policy's knee normalization with
			// dominated points.
			oracle, err := policy.Choose(core.ParetoFront(oracleSet), spec)
			if err != nil {
				return PolicyEvalTable{}, fmt.Errorf("experiments: %s/%s/%s oracle: %w", dev.Name, b.Name, spec.Name, err)
			}
			chosenRel, ok := measured[d.Chosen.Config]
			if !ok {
				// The governor picks from the sampled candidates, so a miss
				// is a programming error worth surfacing.
				return PolicyEvalTable{}, fmt.Errorf("experiments: chosen config %v not in sampled sweep of %s",
					d.Chosen.Config, b.Name)
			}
			oracleRel := measured[oracle.Chosen.Config]
			tbl.Rows = append(tbl.Rows, PolicyEvalRow{
				Policy:        spec.Name,
				Benchmark:     b.Name,
				Chosen:        d.Chosen.Config,
				ChosenSpeedup: chosenRel.Speedup,
				ChosenEnergy:  chosenRel.NormEnergy,
				Feasible:      d.Feasible,
				Oracle:        oracle.Chosen.Config,
				OracleSpeedup: oracleRel.Speedup,
				OracleEnergy:  oracleRel.NormEnergy,
			})
		}
	}
	return tbl, nil
}

// PolicyEvalSummary aggregates one device's rows per policy: how often the
// governor picked the oracle's exact configuration, and the mean measured
// objective gaps to the oracle.
type PolicyEvalSummary struct {
	Policy string
	// ExactMatches counts benchmarks where chosen == oracle configuration.
	ExactMatches int
	Benchmarks   int
	// MeanSpeedupGap and MeanEnergyGap average (chosen − oracle) measured
	// objectives; for energy, positive means the governor spent more than
	// the oracle.
	MeanSpeedupGap float64
	MeanEnergyGap  float64
}

// Summarize reduces a device table to per-policy summaries, in Builtins
// order.
func (t PolicyEvalTable) Summarize() []PolicyEvalSummary {
	byPolicy := map[string]*PolicyEvalSummary{}
	var order []string
	for _, r := range t.Rows {
		s, ok := byPolicy[r.Policy]
		if !ok {
			s = &PolicyEvalSummary{Policy: r.Policy}
			byPolicy[r.Policy] = s
			order = append(order, r.Policy)
		}
		s.Benchmarks++
		if r.Chosen == r.Oracle {
			s.ExactMatches++
		}
		s.MeanSpeedupGap += r.ChosenSpeedup - r.OracleSpeedup
		s.MeanEnergyGap += r.ChosenEnergy - r.OracleEnergy
	}
	out := make([]PolicyEvalSummary, 0, len(order))
	for _, name := range order {
		s := byPolicy[name]
		if s.Benchmarks > 0 {
			s.MeanSpeedupGap /= float64(s.Benchmarks)
			s.MeanEnergyGap /= float64(s.Benchmarks)
		}
		out = append(out, *s)
	}
	return out
}

// RenderPolicyEval prints the per-benchmark decisions and the per-policy
// summary for every evaluated device.
func RenderPolicyEval(w io.Writer, tables []PolicyEvalTable) {
	fmt.Fprintln(w, "Policy evaluation: governor decisions vs measured oracle")
	for _, tbl := range tables {
		fmt.Fprintf(w, "  %s\n", tbl.Device)
		fmt.Fprintf(w, "  model: %s\n", tbl.Model)
		fmt.Fprintf(w, "  %-11s %-15s %-11s %7s %7s   %-11s %7s %7s\n",
			"policy", "benchmark", "chosen", "spd", "energy", "oracle", "spd", "energy")
		for _, r := range tbl.Rows {
			note := ""
			if !r.Feasible {
				note = "  [infeasible: fallback]"
			}
			fmt.Fprintf(w, "  %-11s %-15s %-11s %7.3f %7.3f   %-11s %7.3f %7.3f%s\n",
				r.Policy, r.Benchmark, r.Chosen, r.ChosenSpeedup, r.ChosenEnergy,
				r.Oracle, r.OracleSpeedup, r.OracleEnergy, note)
		}
		fmt.Fprintf(w, "  per-policy summary (%s):\n", tbl.Device)
		fmt.Fprintf(w, "    %-11s %12s %14s %14s\n", "policy", "exact match", "Δspeedup", "Δenergy")
		for _, s := range tbl.Summarize() {
			fmt.Fprintf(w, "    %-11s %7d/%-4d %+14.4f %+14.4f\n",
				s.Policy, s.ExactMatches, s.Benchmarks, s.MeanSpeedupGap, s.MeanEnergyGap)
		}
	}
}
