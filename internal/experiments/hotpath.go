package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/engine"
	"repro/internal/features"
	"repro/internal/policy"
	"repro/internal/registry"
)

// HotPathRow is one serving layer's measured per-kernel decision cost.
type HotPathRow struct {
	// Layer names the serving path the row measures.
	Layer string `json:"layer"`
	// NsPerKernel is the mean wall-clock cost of one kernel's decision or
	// front derivation through this layer.
	NsPerKernel float64 `json:"ns_per_kernel"`
	// KernelsPerSec is the single-threaded throughput ceiling implied by
	// NsPerKernel.
	KernelsPerSec float64 `json:"kernels_per_sec"`
	// Note explains what the layer does per kernel.
	Note string `json:"note"`
}

// HotPathReport is the serve-hot-path throughput table: the per-decision
// cost of each layer between a /select or /predict request and the SVRs —
// publish-time front lookup, memoized sweep, live ladder sweep, and the
// columnar batch plane.
type HotPathReport struct {
	Provenance Provenance `json:"provenance"`
	// Kernels is how many training kernels each pass decides or derives.
	Kernels int `json:"kernels"`
	// Configs is the modeled ladder size: the number of (mem, core)
	// configurations a live sweep evaluates per kernel.
	Configs int          `json:"configs"`
	Rows    []HotPathRow `json:"rows"`
}

// timePerKernel runs f (which processes kernels kernels per call) until it
// has spent a minimum wall-clock budget, returning the mean ns per kernel.
func timePerKernel(kernels int, f func()) float64 {
	const budget = 30 * time.Millisecond
	f() // warm caches and pools outside the timed window
	var (
		elapsed time.Duration
		calls   int
	)
	for elapsed < budget {
		start := time.Now()
		f()
		elapsed += time.Since(start)
		calls++
	}
	return float64(elapsed.Nanoseconds()) / float64(calls*kernels)
}

// HotPath measures the serving layers over the trained models and every
// training kernel. It is an in-process measurement of the same code paths
// gpufreqd's read plane serves, without HTTP decode/encode.
func (s *Suite) HotPath() (HotPathReport, error) {
	pred, err := s.Predictor()
	if err != nil {
		return HotPathReport{}, err
	}
	prov, err := s.Provenance()
	if err != nil {
		return HotPathReport{}, err
	}
	kernels := engine.TrainingKernels()
	sts := make([]features.Static, len(kernels))
	for i := range kernels {
		sts[i] = kernels[i].Features
	}
	spec := policy.Spec{Name: policy.MinEnergy}
	rep := HotPathReport{
		Provenance: prov,
		Kernels:    len(kernels),
		Configs:    len(pred.PredictAll(sts[0], nil)),
	}
	decideAll := func(g *policy.Governor) func() {
		return func() {
			for _, st := range sts {
				if _, err := g.Decide(st, spec); err != nil {
					panic(err)
				}
			}
		}
	}

	// Publish-time front table: every decision is a map hit.
	fronts := registry.ComputeFronts(pred, kernels)
	front := policy.NewGovernorWithFronts(pred, -1, fronts.Map())
	rep.Rows = append(rep.Rows, HotPathRow{
		Layer:       "front table",
		NsPerKernel: timePerKernel(len(kernels), decideAll(front)),
		Note:        "publish-time Pareto front lookup, zero SVR evaluations",
	})

	// Sweep LRU: decision cache missed (spec varies), sweep memoized.
	sweepGov := policy.NewGovernor(pred, len(kernels)+1)
	eps := 0.0
	sweepAll := func() {
		eps += 1e-12 // a new spec every pass: decision miss, sweep hit
		varied := spec
		varied.MaxSlowdown = policy.DefaultMaxSlowdown + eps
		for _, st := range sts {
			if _, err := sweepGov.Decide(st, varied); err != nil {
				panic(err)
			}
		}
	}
	rep.Rows = append(rep.Rows, HotPathRow{
		Layer:       "sweep LRU",
		NsPerKernel: timePerKernel(len(kernels), sweepAll),
		Note:        "memoized ladder sweep shared across specs",
	})

	// Warm per-config LRU: the pre-fronts /select steady state — a ladder
	// sweep per decision whose per-configuration predictions hit the
	// predictor's LRU after the first touch.
	live := policy.NewGovernor(pred, -1)
	rep.Rows = append(rep.Rows, HotPathRow{
		Layer:       "warm config LRU",
		NsPerKernel: timePerKernel(len(kernels), decideAll(live)),
		Note:        "ladder sweep per decision, per-config predictions memoized",
	})

	// The last two rows compare row-at-a-time against columnar SVR
	// evaluation with the LRU out of the way: both run the real math for
	// every (kernel, configuration) pair.
	models, err := s.Models()
	if err != nil {
		return HotPathReport{}, err
	}
	opts := s.Engine().Options()
	opts.CacheSize = -1
	uncached := engine.NewPredictor(models, s.Harness().Device().Sim().Ladder, opts)

	rep.Rows = append(rep.Rows, HotPathRow{
		Layer: "per-kernel sweep",
		NsPerKernel: timePerKernel(len(kernels), func() {
			for _, st := range sts {
				uncached.ParetoSet(st)
			}
		}),
		Note: "row-at-a-time SVR evaluation, no cache (cold /predict)",
	})

	// Columnar batch plane: whole-matrix PredictFrontsInto, the
	// /predict/batch engine path (always bypasses the LRU).
	scratch := engine.GetBatchScratch()
	defer engine.PutBatchScratch(scratch)
	rep.Rows = append(rep.Rows, HotPathRow{
		Layer: "columnar batch",
		NsPerKernel: timePerKernel(len(kernels), func() {
			uncached.PredictFrontsInto(scratch, sts)
		}),
		Note: "one flat design matrix per model, in-place fronts",
	})

	for i := range rep.Rows {
		rep.Rows[i].KernelsPerSec = 1e9 / rep.Rows[i].NsPerKernel
	}
	return rep, nil
}

// RenderHotPath prints the serve-hot-path table as an aligned text report.
func RenderHotPath(w io.Writer, r HotPathReport) {
	fmt.Fprintf(w, "Serve hot path — per-kernel decision cost by layer (models %s)\n", r.Provenance)
	fmt.Fprintf(w, "%d training kernels, %d modeled configurations per ladder sweep\n\n", r.Kernels, r.Configs)
	fmt.Fprintf(w, "%-18s %14s %16s  %s\n", "layer", "ns/kernel", "kernels/s", "note")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-18s %14.0f %16.0f  %s\n",
			row.Layer, row.NsPerKernel, row.KernelsPerSec, row.Note)
	}
}
