package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/freq"
	"repro/internal/measure"
)

// Fig1Benchmarks are the two motivational applications of Fig. 1.
var Fig1Benchmarks = []string{"k-NN", "MT"}

// Fig1Series is one memory clock's curve: speedup and normalized energy
// over the core clocks of its ladder.
type Fig1Series struct {
	Mem    freq.MHz
	Points []measure.Relative // ascending core clock
}

// Fig1Data holds the sweep series of one benchmark.
type Fig1Data struct {
	Benchmark string
	Series    []Fig1Series // descending memory clock (H, h, l, L)
}

// Fig1 reproduces Fig. 1: exhaustive frequency sweeps of k-NN and MT with
// speedup and normalized energy per configuration.
func (s *Suite) Fig1() ([]Fig1Data, error) {
	var out []Fig1Data
	for _, name := range Fig1Benchmarks {
		rels, err := s.Sweep(name)
		if err != nil {
			return nil, err
		}
		out = append(out, groupByMem(name, rels))
	}
	return out, nil
}

func groupByMem(name string, rels []measure.Relative) Fig1Data {
	byMem := map[freq.MHz][]measure.Relative{}
	var mems []freq.MHz
	for _, r := range rels {
		if _, ok := byMem[r.Config.Mem]; !ok {
			mems = append(mems, r.Config.Mem)
		}
		byMem[r.Config.Mem] = append(byMem[r.Config.Mem], r)
	}
	sort.Slice(mems, func(i, j int) bool { return mems[i] > mems[j] })
	d := Fig1Data{Benchmark: name}
	for _, m := range mems {
		pts := byMem[m]
		sort.Slice(pts, func(i, j int) bool { return pts[i].Config.Core < pts[j].Config.Core })
		d.Series = append(d.Series, Fig1Series{Mem: m, Points: pts})
	}
	return d
}

// RenderFig1 prints the Fig. 1 series as aligned text tables.
func RenderFig1(w io.Writer, data []Fig1Data) {
	for _, d := range data {
		fmt.Fprintf(w, "Figure 1: %s — speedup / normalized energy vs core frequency\n", d.Benchmark)
		for _, ser := range d.Series {
			fmt.Fprintf(w, "  %s (%d MHz):\n", freq.MemLabel(ser.Mem), ser.Mem)
			fmt.Fprintf(w, "    %-6s  %8s  %8s\n", "core", "speedup", "energy")
			for _, p := range ser.Points {
				fmt.Fprintf(w, "    %-6d  %8.3f  %8.3f\n", p.Config.Core, p.Speedup, p.NormEnergy)
			}
		}
		fmt.Fprintln(w)
	}
}

// Fig4Row describes one memory clock's supported core-clock list on a
// device, including the claimed-but-clamped gray configurations.
type Fig4Row struct {
	Device  string
	Mem     freq.MHz
	Actual  []freq.MHz
	Clamped []freq.MHz // claimed minus actual
	Default bool       // whether this row's ladder holds the default config
}

// Fig4 reproduces Fig. 4: supported memory × core combinations of the
// Titan X (a) and the Tesla P100 (b).
func (s *Suite) Fig4() []Fig4Row {
	var out []Fig4Row
	for _, dev := range []*freq.Ladder{s.Harness().Device().Sim().Ladder, freq.P100()} {
		for _, m := range dev.MemClocks() {
			actual := dev.CoreClocks(m)
			actualSet := map[freq.MHz]bool{}
			for _, c := range actual {
				actualSet[c] = true
			}
			var clamped []freq.MHz
			for _, c := range dev.ClaimedCoreClocks(m) {
				if !actualSet[c] {
					clamped = append(clamped, c)
				}
			}
			out = append(out, Fig4Row{
				Device:  dev.Name(),
				Mem:     m,
				Actual:  actual,
				Clamped: clamped,
				Default: dev.Default().Mem == m,
			})
		}
	}
	return out
}

// RenderFig4 prints the supported-combination map.
func RenderFig4(w io.Writer, rows []Fig4Row) {
	fmt.Fprintln(w, "Figure 4: supported combinations of memory and core frequencies")
	last := ""
	for _, r := range rows {
		if r.Device != last {
			fmt.Fprintf(w, "  %s\n", r.Device)
			last = r.Device
		}
		def := ""
		if r.Default {
			def = "  (default memory clock)"
		}
		fmt.Fprintf(w, "    mem %4d MHz: %2d core clocks, %4d–%4d MHz%s\n",
			r.Mem, len(r.Actual), r.Actual[0], r.Actual[len(r.Actual)-1], def)
		if len(r.Clamped) > 0 {
			fmt.Fprintf(w, "      + %d claimed-but-clamped: %d–%d MHz (applied as 1202 MHz)\n",
				len(r.Clamped), r.Clamped[0], r.Clamped[len(r.Clamped)-1])
		}
	}
}

// Fig5Benchmarks are the eight selected applications of Fig. 5, in its
// layout order (top row compute-dominated, bottom row memory-dominated).
var Fig5Benchmarks = []string{
	"k-NN", "AES", "MatrixMultiply", "Convolution",
	"MedianFilter", "BitCompression", "MT", "Blackscholes",
}

// Fig5 reproduces Fig. 5: the speedup/normalized-energy scatter of the
// eight selected benchmarks over all frequency configurations.
func (s *Suite) Fig5() ([]Fig1Data, error) {
	var out []Fig1Data
	for _, name := range Fig5Benchmarks {
		rels, err := s.Sweep(name)
		if err != nil {
			return nil, err
		}
		out = append(out, groupByMem(name, rels))
	}
	return out, nil
}

// RenderFig5 prints a per-benchmark summary of the scatter: the objective
// ranges per memory clock plus the full point list.
func RenderFig5(w io.Writer, data []Fig1Data) {
	fmt.Fprintln(w, "Figure 5: speedup and normalized energy for eight selected benchmarks")
	for _, d := range data {
		fmt.Fprintf(w, "  %s\n", d.Benchmark)
		for _, ser := range d.Series {
			minS, maxS := ser.Points[0].Speedup, ser.Points[0].Speedup
			minE, maxE := ser.Points[0].NormEnergy, ser.Points[0].NormEnergy
			for _, p := range ser.Points {
				if p.Speedup < minS {
					minS = p.Speedup
				}
				if p.Speedup > maxS {
					maxS = p.Speedup
				}
				if p.NormEnergy < minE {
					minE = p.NormEnergy
				}
				if p.NormEnergy > maxE {
					maxE = p.NormEnergy
				}
			}
			fmt.Fprintf(w, "    %-6s: %2d cfgs, speedup [%5.2f, %5.2f], energy [%5.2f, %5.2f]\n",
				freq.MemLabel(ser.Mem), len(ser.Points), minS, maxS, minE, maxE)
		}
	}
}
