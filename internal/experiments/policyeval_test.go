package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/policy"
)

func TestPolicyEvalBothDevices(t *testing.T) {
	tables, err := PolicyEval(engine.Options{Core: core.Options{SettingsPerKernel: 10}})
	if err != nil {
		t.Fatalf("PolicyEval: %v", err)
	}
	if len(tables) != 2 {
		t.Fatalf("tables = %d, want 2 (Titan X, P100)", len(tables))
	}
	wantRows := len(bench.All()) * len(policy.Builtins())
	for _, tbl := range tables {
		if tbl.Device == "" {
			t.Error("table without device name")
		}
		if len(tbl.Rows) != wantRows {
			t.Errorf("%s: rows = %d, want %d", tbl.Device, len(tbl.Rows), wantRows)
		}
		for _, r := range tbl.Rows {
			if r.ChosenSpeedup <= 0 || r.OracleSpeedup <= 0 {
				t.Errorf("%s %s/%s: non-positive measured speedup: %+v", tbl.Device, r.Policy, r.Benchmark, r)
			}
			// The oracle has perfect knowledge; for objective policies the
			// governor can at best match it in the policy's own metric.
			switch r.Policy {
			case policy.EDP:
				if r.ChosenEnergy/r.ChosenSpeedup < r.OracleEnergy/r.OracleSpeedup-1e-9 {
					t.Errorf("%s %s: governor beat the oracle in its own metric: %+v", tbl.Device, r.Benchmark, r)
				}
			case policy.MaxPerf:
				// Feasible oracle decisions bound feasible governor ones.
				if r.OracleEnergy <= policy.DefaultEnergyBudget && r.ChosenEnergy <= policy.DefaultEnergyBudget &&
					r.ChosenSpeedup > r.OracleSpeedup+1e-9 {
					t.Errorf("%s %s: governor beat the max-perf oracle: %+v", tbl.Device, r.Benchmark, r)
				}
			}
		}
		sums := tbl.Summarize()
		if len(sums) != len(policy.Builtins()) {
			t.Errorf("%s: summaries = %d, want %d", tbl.Device, len(sums), len(policy.Builtins()))
		}
		for _, s := range sums {
			if s.Benchmarks != len(bench.All()) {
				t.Errorf("%s %s: benchmarks = %d, want %d", tbl.Device, s.Policy, s.Benchmarks, len(bench.All()))
			}
			if s.ExactMatches < 0 || s.ExactMatches > s.Benchmarks {
				t.Errorf("%s %s: exact matches out of range: %+v", tbl.Device, s.Policy, s)
			}
		}
	}

	var buf bytes.Buffer
	RenderPolicyEval(&buf, tables)
	out := buf.String()
	for _, info := range policy.Builtins() {
		if !strings.Contains(out, info.Name) {
			t.Errorf("RenderPolicyEval missing policy %q", info.Name)
		}
	}
	for _, tbl := range tables {
		if !strings.Contains(out, tbl.Device) {
			t.Errorf("RenderPolicyEval missing device %q", tbl.Device)
		}
	}
}
