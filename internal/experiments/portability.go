package experiments

import (
	"context"
	"fmt"
	"io"
	"math"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gpu"
	"repro/internal/measure"
	"repro/internal/nvml"
)

// PortabilityResult evaluates the methodology on a second device. The paper
// claims portability ("different NVIDIA GPUs may have very different
// tunable configurations... the methodology introduced by this work is
// portable"); the Tesla P100 exercises the degenerate case of a single
// memory clock, where the problem reduces to core-clock scaling and no
// mem-L heuristic applies.
type PortabilityResult struct {
	Device string
	// Model records which model version produced the evaluation.
	Model Provenance
	// NumConfigs is the device's tunable configuration count.
	NumConfigs int
	// SpeedupRMSE and EnergyRMSE are percentage-point RMS errors over the
	// twelve test benchmarks at the sampled settings.
	SpeedupRMSE float64
	EnergyRMSE  float64
	// MeanParetoSize is the average predicted Pareto-set size.
	MeanParetoSize float64
}

// PortabilityP100 retrains the models from scratch on the simulated Tesla
// P100 and evaluates prediction error and Pareto sets on the twelve test
// benchmarks — the full pipeline on a device the Titan X models never saw.
func PortabilityP100(opts core.Options) (PortabilityResult, error) {
	h := measure.NewHarness(nvml.NewDevice(gpu.P100()))
	ladder := h.Device().Sim().Ladder

	eng := engine.New(h, engine.Options{Core: opts})
	if _, err := eng.Train(context.Background(), TrainingKernels()); err != nil {
		return PortabilityResult{}, fmt.Errorf("experiments: P100 training: %w", err)
	}
	pred, err := eng.Predictor()
	if err != nil {
		return PortabilityResult{}, err
	}

	var sSum, eSum float64
	var n int
	var paretoSizes int
	settings := ladder.TrainingSample(40)
	for _, b := range bench.All() {
		st := b.Features()
		base, err := h.Baseline(b.Profile())
		if err != nil {
			return PortabilityResult{}, err
		}
		for _, cfg := range settings {
			rel, err := h.MeasureRelative(b.Profile(), cfg, base)
			if err != nil {
				return PortabilityResult{}, err
			}
			p := pred.PredictConfig(st, cfg)
			ds := 100 * (p.Speedup - rel.Speedup)
			de := 100 * (p.NormEnergy - rel.NormEnergy)
			sSum += ds * ds
			eSum += de * de
			n++
		}
		paretoSizes += len(pred.ParetoSet(st))
	}
	prov, err := ProvenanceFor(h.Device().Name(), eng.Models(), "")
	if err != nil {
		return PortabilityResult{}, err
	}
	return PortabilityResult{
		Device:         h.Device().Name(),
		Model:          prov,
		NumConfigs:     ladder.NumConfigs(),
		SpeedupRMSE:    math.Sqrt(sSum / float64(n)),
		EnergyRMSE:     math.Sqrt(eSum / float64(n)),
		MeanParetoSize: float64(paretoSizes) / float64(len(bench.All())),
	}, nil
}

// RenderPortability prints the portability evaluation.
func RenderPortability(w io.Writer, r PortabilityResult) {
	fmt.Fprintln(w, "Portability: full pipeline retrained on a second device")
	fmt.Fprintf(w, "  device:            %s\n", r.Device)
	fmt.Fprintf(w, "  model:             %s\n", r.Model)
	fmt.Fprintf(w, "  configurations:    %d (single memory clock)\n", r.NumConfigs)
	fmt.Fprintf(w, "  speedup RMSE:      %.2f%%\n", r.SpeedupRMSE)
	fmt.Fprintf(w, "  energy RMSE:       %.2f%%\n", r.EnergyRMSE)
	fmt.Fprintf(w, "  mean Pareto size:  %.1f configurations\n", r.MeanParetoSize)
}
