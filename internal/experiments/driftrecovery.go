package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/adapt"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/freq"
	"repro/internal/gpu"
	"repro/internal/registry"
)

// AdaptPhase summarizes one phase of the drift-recovery experiment: the
// serving model's prediction error over the phase's observations, in the
// same fractional RMSE units the adaptation loop itself uses. Each
// observation is judged against the model that was serving when it was
// made, so a mid-phase hot-swap shows up as the phase improving.
type AdaptPhase struct {
	// Name is "pre-shift", "shifted" or "recovered".
	Name string `json:"name"`
	// ModelVersion is the version serving at the end of the phase.
	ModelVersion string `json:"model_version"`
	// Observations is how many samples the phase fed the loop.
	Observations int `json:"observations"`
	// SpeedupRMSE and EnergyRMSE are the per-objective errors, and
	// PooledRMSE pools both objectives into one number.
	SpeedupRMSE float64 `json:"speedup_rmse"`
	EnergyRMSE  float64 `json:"energy_rmse"`
	PooledRMSE  float64 `json:"pooled_rmse"`
	// Retrains counts the auto-retrains the loop ran during the phase.
	Retrains int `json:"retrains"`
}

// AdaptReport is the drift-recovery experiment's result: a synthetic
// workload shift is injected into live measurements, the adaptation loop
// detects the drift and auto-retrains (possibly more than once as the
// rolling window fills with the new regime), and prediction error returns
// to the neighbourhood of its pre-shift level — the closed loop's
// end-to-end correctness argument, reachable via freqbench -exp adapt.
type AdaptReport struct {
	// Model is the provenance of the base (pre-shift) model.
	Model Provenance `json:"model"`
	// Phases holds pre-shift, no-adapt (the shifted workload judged by
	// the frozen base model — the counterfactual without the loop),
	// shifted (live, retrains included) and recovered, in order.
	Phases []AdaptPhase `json:"phases"`
	// DriftDetected reports whether the detector fired during the shifted
	// phase, and DriftAfter counts the shifted observations it needed.
	DriftDetected bool `json:"drift_detected"`
	DriftAfter    int  `json:"drift_after"`
	// Retrains counts the loop's auto-retrains over the whole run;
	// Activated and Rejected split them by holdout verdict.
	Retrains  int `json:"retrains"`
	Activated int `json:"activated"`
	Rejected  int `json:"rejected"`
	// FinalVersion is the version serving after recovery.
	FinalVersion string `json:"final_version"`
	// Holdout is the last retrain's candidate-vs-active comparison.
	Holdout adapt.HoldoutReport `json:"holdout"`
	// RecoveryRatio is recovered pooled RMSE over pre-shift pooled RMSE;
	// at or below ~1 the loop fully recovered the shifted workload.
	RecoveryRatio float64 `json:"recovery_ratio"`
}

// shiftProfile injects the synthetic workload shift: the same kernels
// suddenly run with cold caches and scattered accesses — the dataset
// outgrew the L2 and coalescing broke down — so their measured
// speedup/energy curves flatten toward memory-bound behaviour while their
// static features (all the models can see at prediction time) are
// unchanged. This is exactly the silent-drift failure mode a frozen
// offline model cannot notice.
func shiftProfile(p gpu.KernelProfile) gpu.KernelProfile {
	p.CacheHitRate = 0
	p.Coalescing = 0.12
	return p
}

// AdaptRecovery runs the drift-recovery experiment on the suite's device:
// train a base model, serve it behind the adaptation loop, feed measured
// observations (pre-shift), inject the workload shift (error rises, drift
// fires, the loop auto-retrains with the window's observations folded in),
// then measure the recovered error on fresh shifted samples.
func (s *Suite) AdaptRecovery() (AdaptReport, error) {
	ctx := context.Background()
	eng := s.eng
	device := eng.Harness().Device().Name()
	ladder := eng.Harness().Device().Sim().Ladder

	// Base model: trained through the same EngineTrainer the loop's
	// retrains use, so the synthetic training set is built once and the
	// manifest records the residual baselines.
	trainer := adapt.NewEngineTrainer(eng, nil)
	models, tr, err := trainer.Fit(ctx, nil, nil)
	if err != nil {
		return AdaptReport{}, fmt.Errorf("experiments: base training: %w", err)
	}
	store, err := registry.Open("")
	if err != nil {
		return AdaptReport{}, err
	}
	man, err := store.Save(device, "", models, tr)
	if err != nil {
		return AdaptReport{}, err
	}
	if err := store.Activate(device, man.Version); err != nil {
		return AdaptReport{}, err
	}
	prov, err := ProvenanceFor(device, models, man.Version)
	if err != nil {
		return AdaptReport{}, err
	}

	// A minimal serving holder: the current (predictor, version) pair the
	// controller evaluates against and hot-swaps on activation.
	current := &struct {
		version string
		pred    *engine.Predictor
	}{man.Version, engine.NewPredictor(models, ladder, eng.Options())}
	install := func(version string, m *core.Models) error {
		if err := store.Activate(device, version); err != nil {
			return err
		}
		current.version = version
		current.pred = engine.NewPredictor(m, ladder, eng.Options())
		return nil
	}

	// Observations come from configurations a production governor would
	// actually apply: the two highest memory clocks, where Figs. 6–7 show
	// the models are reliable and where every built-in policy's decisions
	// land. (mem-L is served by the paper's heuristic, not the models, and
	// the mid clocks' larger baseline error would mask the shift signal.)
	var cfgs []freq.Config
	for _, m := range ladder.MemClocks()[:2] {
		cores := ladder.CoreClocks(m)
		step := len(cores)/6 + 1
		for i := 0; i < len(cores); i += step {
			cfgs = append(cfgs, freq.Config{Mem: m, Core: cores[i]})
		}
	}
	benches := bench.All()
	perPhase := len(benches) * len(cfgs)

	// measureSet measures every benchmark at every sampled configuration
	// (optionally shifted) on a fresh harness clone per benchmark and
	// returns the observations in a deterministic order.
	measureSet := func(shifted bool) ([]adapt.Observation, error) {
		out := make([]adapt.Observation, 0, perPhase)
		for _, b := range benches {
			prof := b.Profile()
			if shifted {
				prof = shiftProfile(prof)
			}
			h := eng.Harness().Clone()
			base, err := h.Baseline(prof)
			if err != nil {
				return nil, err
			}
			st := b.Features()
			for _, cfg := range cfgs {
				rel, err := h.MeasureRelative(prof, cfg, base)
				if err != nil {
					return nil, err
				}
				out = append(out, adapt.Observation{
					Kernel:     b.Name,
					Features:   st,
					Config:     rel.Config,
					Speedup:    rel.Speedup,
					NormEnergy: rel.NormEnergy,
				})
			}
		}
		return out, nil
	}

	// Calibration: the pre-shift error of the serving model on the live
	// workload is the loop's baseline — 2× it (the default DriftFactor)
	// must mean "the workload changed", not "benchmarks are harder than
	// the synthetic training corpus".
	preObs, err := measureSet(false)
	if err != nil {
		return AdaptReport{}, fmt.Errorf("experiments: pre-shift measurement: %w", err)
	}
	pre := phaseOf("pre-shift", preObs, current.pred)
	pre.ModelVersion = current.version

	ctl := adapt.New(adapt.Config{
		Auto: true,
		Sync: true, // deterministic: retrains complete inside Observe
		// A tight threshold (1.3× the measured normal-operation error)
		// with the window as corpus: the tuning recipe documented in
		// docs/OPERATIONS.md for workloads whose baseline error is
		// already substantial.
		DriftFactor:       1.3,
		ObservationWeight: 6,
		Capacity:          2 * perPhase,
		Window:            perPhase,
		MinSamples:        perPhase / 4,
		BaselineSpeedup:   pre.SpeedupRMSE,
		BaselineEnergy:    pre.EnergyRMSE,
		Cooldown:          time.Nanosecond,
		CooldownObs:       perPhase / 3, // pace repeated retrains by observation count
	}, adapt.Deps{
		Device: device,
		Store:  store,
		Current: func() (*engine.Predictor, string, bool) {
			return current.pred, current.version, current.pred != nil
		},
		Install: install,
		Trainer: trainer,
	})

	rep := AdaptReport{Model: prov}

	// ingestPhase feeds pre-measured observations (pre-shift) or measures
	// and feeds live (shifted phases must interleave: a mid-phase retrain
	// changes the serving model the rest of the phase is judged against).
	ingest := func(name string, obs []adapt.Observation) (AdaptPhase, error) {
		ph := AdaptPhase{Name: name}
		before := ctl.Status().Retrain.Retrains
		var ss, se float64
		for i, o := range obs {
			p := current.pred.PredictConfig(o.Features, o.Config)
			ds := p.Speedup - o.Speedup
			de := p.NormEnergy - o.NormEnergy
			ss += ds * ds
			se += de * de
			res, err := ctl.Observe(o)
			if err != nil {
				return ph, err
			}
			if res.RetrainStarted && !rep.DriftDetected && name == "shifted" {
				rep.DriftDetected = true
				rep.DriftAfter = i + 1
			}
			ph.Observations++
		}
		n := float64(ph.Observations)
		ph.SpeedupRMSE = math.Sqrt(ss / n)
		ph.EnergyRMSE = math.Sqrt(se / n)
		ph.PooledRMSE = math.Sqrt((ss + se) / (2 * n))
		ph.ModelVersion = current.version
		ph.Retrains = ctl.Status().Retrain.Retrains - before
		return ph, nil
	}

	// Pre-shift: already measured; ingesting it must not trigger anything
	// (its error is the baseline).
	preIngested, err := ingest("pre-shift", preObs)
	if err != nil {
		return rep, fmt.Errorf("experiments: pre-shift phase: %w", err)
	}
	pre.Retrains = preIngested.Retrains
	rep.Phases = append(rep.Phases, pre)

	shiftedObs, err := measureSet(true)
	if err != nil {
		return rep, fmt.Errorf("experiments: shifted measurement: %w", err)
	}
	// The counterfactual first: the whole shifted phase judged by the
	// frozen base model — what the error stays at forever without the
	// loop. (The live "shifted" row below is usually better already:
	// mid-phase retrains improve its tail.)
	noAdapt := phaseOf("no-adapt", shiftedObs, engine.NewPredictor(models, ladder, eng.Options()))
	noAdapt.ModelVersion = man.Version
	shifted, err := ingest("shifted", shiftedObs)
	if err != nil {
		return rep, fmt.Errorf("experiments: shifted phase: %w", err)
	}
	rep.Phases = append(rep.Phases, noAdapt, shifted)

	recoveredObs, err := measureSet(true)
	if err != nil {
		return rep, fmt.Errorf("experiments: recovered measurement: %w", err)
	}
	recovered, err := ingest("recovered", recoveredObs)
	if err != nil {
		return rep, fmt.Errorf("experiments: recovered phase: %w", err)
	}
	rep.Phases = append(rep.Phases, recovered)

	rs := ctl.Status().Retrain
	rep.Retrains = rs.Retrains
	rep.Activated = rs.Activated
	rep.Rejected = rs.Rejected
	rep.FinalVersion = current.version
	if rs.LastHoldout != nil {
		rep.Holdout = *rs.LastHoldout
	}
	if pre.PooledRMSE > 0 {
		rep.RecoveryRatio = recovered.PooledRMSE / pre.PooledRMSE
	}
	return rep, nil
}

// phaseOf computes a phase summary for pre-measured observations under one
// fixed predictor, using the loop's own error definition.
func phaseOf(name string, obs []adapt.Observation, pred *engine.Predictor) AdaptPhase {
	ph := AdaptPhase{Name: name, Observations: len(obs)}
	ph.SpeedupRMSE, ph.EnergyRMSE = adapt.Residuals(pred, obs)
	ph.PooledRMSE = pooled(ph.SpeedupRMSE, ph.EnergyRMSE)
	return ph
}

// pooled combines both objectives' RMSEs into one number (the root of the
// mean of their squared values — algebraically the RMSE over the pooled
// squared errors).
func pooled(speedup, energy float64) float64 {
	return math.Sqrt((speedup*speedup + energy*energy) / 2)
}

// RenderAdaptReport prints the drift-recovery experiment as an aligned
// text report.
func RenderAdaptReport(w io.Writer, r AdaptReport) {
	fmt.Fprintln(w, "Drift recovery: closed-loop adaptation under a synthetic workload shift")
	fmt.Fprintf(w, "  base model: %s\n", r.Model)
	fmt.Fprintf(w, "  %-10s %-8s %6s %9s %14s %13s %13s\n",
		"phase", "model", "obs", "retrains", "speedup RMSE", "energy RMSE", "pooled RMSE")
	for _, ph := range r.Phases {
		fmt.Fprintf(w, "  %-10s %-8s %6d %9d %13.2f%% %12.2f%% %12.2f%%\n",
			ph.Name, ph.ModelVersion, ph.Observations, ph.Retrains,
			100*ph.SpeedupRMSE, 100*ph.EnergyRMSE, 100*ph.PooledRMSE)
	}
	if r.DriftDetected {
		fmt.Fprintf(w, "  drift detected after %d shifted observations; %d retrains (%d activated, %d rejected) → serving %s\n",
			r.DriftAfter, r.Retrains, r.Activated, r.Rejected, r.FinalVersion)
		fmt.Fprintf(w, "  last holdout: candidate %.2f%% vs active %.2f%% over %d samples (passed=%v)\n",
			100*r.Holdout.CandidateRMSE, 100*r.Holdout.ActiveRMSE, r.Holdout.Samples, r.Holdout.Passed)
	} else {
		fmt.Fprintln(w, "  drift was NOT detected during the shifted phase")
	}
	fmt.Fprintf(w, "  recovery ratio: %.2f× pre-shift error\n", r.RecoveryRatio)
}
