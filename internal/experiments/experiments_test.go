package experiments

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/freq"
)

// fastSuite trains on a reduced setup so tests stay quick; the full paper
// configuration is exercised by the root benchmarks.
var (
	fastOnce  sync.Once
	fastSuite *Suite
)

func suite(t *testing.T) *Suite {
	t.Helper()
	fastOnce.Do(func() {
		fastSuite = NewSuiteWithOptions(core.Options{SettingsPerKernel: 12})
	})
	return fastSuite
}

// TestProvenanceRecorded: every model-dependent table names the model
// version (and content hash) that produced it.
func TestProvenanceRecorded(t *testing.T) {
	s := suite(t)
	prov, err := s.Provenance()
	if err != nil {
		t.Fatalf("Provenance: %v", err)
	}
	if prov.Version != "in-memory" || prov.Device == "" || prov.Hash == "" {
		t.Fatalf("incomplete provenance: %+v", prov)
	}
	sp, err := s.Fig6()
	if err != nil {
		t.Fatalf("Fig6: %v", err)
	}
	if sp.Model != prov {
		t.Fatalf("Fig6 provenance %+v != suite provenance %+v", sp.Model, prov)
	}
	var buf bytes.Buffer
	RenderErrorReport(&buf, "Figure 6", sp)
	if !strings.Contains(buf.String(), "model: "+prov.String()) {
		t.Error("RenderErrorReport does not print the model provenance")
	}

	// A registry-labelled suite reports its version instead of in-memory.
	s2 := NewSuiteWithEngine(s.Engine()) // reuses the trained engine
	s2.SetModelVersion("v0007")
	prov2, err := s2.Provenance()
	if err != nil {
		t.Fatal(err)
	}
	if prov2.Version != "v0007" || prov2.Hash != prov.Hash {
		t.Fatalf("labelled provenance: %+v", prov2)
	}
}

func TestFig1Shapes(t *testing.T) {
	s := suite(t)
	data, err := s.Fig1()
	if err != nil {
		t.Fatalf("Fig1: %v", err)
	}
	if len(data) != 2 || data[0].Benchmark != "k-NN" || data[1].Benchmark != "MT" {
		t.Fatalf("Fig1 benchmarks = %v", []string{data[0].Benchmark, data[1].Benchmark})
	}
	knn := data[0]
	if len(knn.Series) != 4 {
		t.Fatalf("k-NN has %d memory series, want 4", len(knn.Series))
	}
	// k-NN speedup at mem-H grows with core frequency (Fig. 1a).
	h := knn.Series[0]
	if h.Mem != freq.MemH {
		t.Fatalf("first series mem %d, want %d", h.Mem, freq.MemH)
	}
	first, last := h.Points[0], h.Points[len(h.Points)-1]
	if last.Speedup <= first.Speedup*1.5 {
		t.Errorf("k-NN mem-H speedup not strongly increasing: %.3f -> %.3f",
			first.Speedup, last.Speedup)
	}
	// k-NN energy at mem-H is parabolic: interior minimum (Fig. 1b).
	minE, minIdx := math.Inf(1), -1
	for i, p := range h.Points {
		if p.NormEnergy < minE {
			minE, minIdx = p.NormEnergy, i
		}
	}
	if minIdx == 0 || minIdx == len(h.Points)-1 {
		t.Errorf("k-NN mem-H energy minimum at boundary index %d", minIdx)
	}
	// MT speedup at mem-H is flat in core frequency (Fig. 1d).
	mt := data[1].Series[0]
	mtFirst, mtLast := mt.Points[0], mt.Points[len(mt.Points)-1]
	if mtLast.Speedup > mtFirst.Speedup*1.3 {
		t.Errorf("MT mem-H speedup too core-sensitive: %.3f -> %.3f",
			mtFirst.Speedup, mtLast.Speedup)
	}
	// ...but drops when the memory clock drops.
	var mtMemL []float64
	for _, ser := range data[1].Series {
		if ser.Mem == freq.Meml {
			for _, p := range ser.Points {
				mtMemL = append(mtMemL, p.Speedup)
			}
		}
	}
	maxMemL := 0.0
	for _, v := range mtMemL {
		maxMemL = math.Max(maxMemL, v)
	}
	if maxMemL > 0.7 {
		t.Errorf("MT at mem-l reaches speedup %.3f, want well below 1", maxMemL)
	}
}

func TestFig4Rows(t *testing.T) {
	s := suite(t)
	rows := s.Fig4()
	if len(rows) != 5 { // 4 Titan X memories + 1 P100
		t.Fatalf("Fig4 rows = %d, want 5", len(rows))
	}
	counts := map[freq.MHz]int{}
	clamped := 0
	for _, r := range rows[:4] {
		counts[r.Mem] = len(r.Actual)
		clamped += len(r.Clamped)
	}
	if counts[3505] != 50 || counts[3304] != 50 || counts[810] != 71 || counts[405] != 6 {
		t.Errorf("Titan X core counts = %v, want 50/50/71/6", counts)
	}
	if clamped == 0 {
		t.Error("no claimed-but-clamped configurations reported")
	}
	var buf bytes.Buffer
	RenderFig4(&buf, rows)
	out := buf.String()
	for _, want := range []string{"Titan X", "P100", "claimed-but-clamped", "default memory clock"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderFig4 output missing %q", want)
		}
	}
}

func TestFig5Grouping(t *testing.T) {
	s := suite(t)
	data, err := s.Fig5()
	if err != nil {
		t.Fatalf("Fig5: %v", err)
	}
	if len(data) != 8 {
		t.Fatalf("Fig5 has %d benchmarks, want 8", len(data))
	}
	total := 0
	for _, d := range data {
		for _, ser := range d.Series {
			total += len(ser.Points)
		}
		if len(d.Series) != 4 {
			t.Errorf("%s: %d series, want 4", d.Benchmark, len(d.Series))
		}
	}
	ladder := s.Harness().Device().Sim().Ladder
	if total != 8*ladder.NumConfigs() {
		t.Errorf("total points %d, want %d", total, 8*ladder.NumConfigs())
	}
	var buf bytes.Buffer
	RenderFig5(&buf, data)
	if !strings.Contains(buf.String(), "Blackscholes") {
		t.Error("RenderFig5 missing benchmark name")
	}
}

func TestFig67Reports(t *testing.T) {
	s := suite(t)
	sp, en, err := s.fig67()
	if err != nil {
		t.Fatalf("fig67: %v", err)
	}
	for _, rep := range []ErrorReport{sp, en} {
		if len(rep.Mems) != 4 {
			t.Fatalf("%s report covers %d memories, want 4", rep.Objective, len(rep.Mems))
		}
		for _, m := range rep.Mems {
			if rep.RMSE[m] <= 0 || math.IsNaN(rep.RMSE[m]) {
				t.Errorf("%s RMSE at mem %d = %v", rep.Objective, m, rep.RMSE[m])
			}
			if len(rep.PerBenchmark[m]) != 12 {
				t.Errorf("%s at mem %d has %d benchmarks, want 12",
					rep.Objective, m, len(rep.PerBenchmark[m]))
			}
		}
	}
	// Paper shape: high-memory predictions are markedly better than mem-l.
	if sp.RMSE[freq.MemH] >= sp.RMSE[freq.Meml] {
		t.Errorf("speedup RMSE at mem-H (%.1f%%) not below mem-l (%.1f%%)",
			sp.RMSE[freq.MemH], sp.RMSE[freq.Meml])
	}
	if en.RMSE[freq.MemH] >= en.RMSE[freq.Meml] {
		t.Errorf("energy RMSE at mem-H (%.1f%%) not below mem-l (%.1f%%)",
			en.RMSE[freq.MemH], en.RMSE[freq.Meml])
	}
	// Absolute quality at the highest memory clock: paper reports 6.68%
	// (speedup) and 7.82% (energy); the substrate reproduction must stay
	// in the same regime.
	if sp.RMSE[freq.MemH] > 15 {
		t.Errorf("speedup RMSE at mem-H = %.1f%%, want <= 15%%", sp.RMSE[freq.MemH])
	}
	if en.RMSE[freq.MemH] > 15 {
		t.Errorf("energy RMSE at mem-H = %.1f%%, want <= 15%%", en.RMSE[freq.MemH])
	}
	var buf bytes.Buffer
	RenderErrorReport(&buf, "Figure 6", sp)
	if !strings.Contains(buf.String(), "RMSE") || !strings.Contains(buf.String(), "k-NN") {
		t.Error("RenderErrorReport output incomplete")
	}
}

func TestFig8AndTable2(t *testing.T) {
	s := suite(t)
	data, err := s.Fig8()
	if err != nil {
		t.Fatalf("Fig8: %v", err)
	}
	if len(data) != 12 {
		t.Fatalf("Fig8 covers %d benchmarks, want 12", len(data))
	}
	for _, d := range data {
		if len(d.RealFront) == 0 {
			t.Errorf("%s: empty real front", d.Benchmark)
		}
		if len(d.Predicted) == 0 {
			t.Errorf("%s: empty predicted set", d.Benchmark)
		}
		if len(d.Predicted) != len(d.PredictedCfgs) {
			t.Errorf("%s: predicted points/configs mismatch", d.Benchmark)
		}
		// The heuristic point must be last and at mem-L.
		last := d.PredictedCfgs[len(d.PredictedCfgs)-1]
		if !last.MemLHeuristic || last.Config.Mem != freq.MemL {
			t.Errorf("%s: last predicted point %+v is not the mem-L heuristic", d.Benchmark, last)
		}
	}

	rep := Table2From(data)
	rows := rep.Rows
	if len(rows) != 12 {
		t.Fatalf("Table2 has %d rows, want 12", len(rows))
	}
	if rep.Model != data[0].Model || rep.Model.Device == "" || rep.Model.Hash == "" {
		t.Fatalf("Table2 provenance not recorded: %+v", rep.Model)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].D < rows[i-1].D {
			t.Error("Table2 rows not sorted by coverage difference")
		}
	}
	// Headline claim: the approach delivers good approximations for most
	// benchmarks (paper: ten of twelve with D <= 0.0362; best 0.0059).
	good := 0
	for _, r := range rows {
		if r.D <= 0.08 {
			good++
		}
		if r.D < 0 {
			t.Errorf("%s: negative coverage difference %v", r.Benchmark, r.D)
		}
	}
	if good < 8 {
		t.Errorf("only %d/12 benchmarks with D <= 0.08; Pareto prediction too weak", good)
	}
	var buf bytes.Buffer
	RenderTable2(&buf, rep)
	if !strings.Contains(buf.String(), "D(P*,P')") {
		t.Error("RenderTable2 missing header")
	}
	buf.Reset()
	RenderFig8(&buf, data[:1])
	if !strings.Contains(buf.String(), "mem-L heuristic") {
		t.Error("RenderFig8 missing heuristic tag")
	}
}

func TestRenderFig1(t *testing.T) {
	s := suite(t)
	data, err := s.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderFig1(&buf, data)
	out := buf.String()
	for _, want := range []string{"k-NN", "MT", "Mem-H", "Mem-L", "speedup", "energy"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderFig1 missing %q", want)
		}
	}
}

func TestBoxStats(t *testing.T) {
	bs := boxStats([]float64{1, 2, 3, 4, 5})
	if bs.Min != 1 || bs.Max != 5 || bs.Median != 3 {
		t.Errorf("boxStats = %+v", bs)
	}
	if bs.Q25 != 2 || bs.Q75 != 4 {
		t.Errorf("quartiles = %v, %v, want 2, 4", bs.Q25, bs.Q75)
	}
	if bs.N != 5 {
		t.Errorf("N = %d", bs.N)
	}
	empty := boxStats(nil)
	if empty.N != 0 {
		t.Error("empty boxStats should have N=0")
	}
}

func TestSweepCaching(t *testing.T) {
	s := suite(t)
	a, err := s.Sweep("Flte")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Sweep("Flte")
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Error("Sweep did not cache")
	}
	if _, err := s.Sweep("missing"); err == nil {
		t.Error("Sweep of unknown benchmark should fail")
	}
}

func TestPortabilityP100(t *testing.T) {
	r, err := PortabilityP100(core.Options{SettingsPerKernel: 10})
	if err != nil {
		t.Fatalf("PortabilityP100: %v", err)
	}
	if r.NumConfigs != 60 {
		t.Errorf("P100 configs = %d, want 60", r.NumConfigs)
	}
	// Single memory domain: the problem is easier; errors must stay in the
	// same regime as the Titan X's high-memory results.
	if r.SpeedupRMSE <= 0 || r.SpeedupRMSE > 20 {
		t.Errorf("P100 speedup RMSE = %.2f%%, want (0, 20]", r.SpeedupRMSE)
	}
	if r.EnergyRMSE <= 0 || r.EnergyRMSE > 25 {
		t.Errorf("P100 energy RMSE = %.2f%%, want (0, 25]", r.EnergyRMSE)
	}
	if r.MeanParetoSize < 2 {
		t.Errorf("mean Pareto size = %.1f, want >= 2", r.MeanParetoSize)
	}
	var buf bytes.Buffer
	RenderPortability(&buf, r)
	if !strings.Contains(buf.String(), "P100") {
		t.Error("RenderPortability missing device name")
	}
}
