// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 4): the motivational frequency sweeps (Fig. 1), the
// supported-configuration maps (Fig. 4), the application characterization
// scatter (Fig. 5), the per-memory-frequency prediction-error analyses for
// speedup (Fig. 6) and normalized energy (Fig. 7), the predicted-vs-real
// Pareto fronts (Fig. 8), and the coverage-difference table (Table 2).
//
// Each experiment returns structured rows/series and has a Render function
// that prints the same content as an aligned text report, so the cmd
// binaries and the root benchmarks share one implementation.
package experiments

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/measure"
	"repro/internal/registry"
)

// Provenance identifies the trained model set an experiment's tables were
// produced from, so regenerated paper artifacts are attributable to a
// registry snapshot. Version is the registry version id, or "in-memory"
// for models trained ad hoc for the run.
type Provenance struct {
	// Version is the model version id ("in-memory" when untracked).
	Version string `json:"version"`
	// Device names the GPU profile the models were trained for.
	Device string `json:"device"`
	// Hash is the model set's content hash (registry.HashModels).
	Hash string `json:"hash"`
}

// String renders the provenance the way reports print it.
func (p Provenance) String() string {
	if p.Hash == "" {
		return fmt.Sprintf("%s/%s", p.Device, p.Version)
	}
	return fmt.Sprintf("%s/%s (hash %.8s…)", p.Device, p.Version, p.Hash)
}

// ProvenanceFor builds the provenance of a model set. An empty version is
// recorded as "in-memory".
func ProvenanceFor(device string, m *core.Models, version string) (Provenance, error) {
	hash, err := registry.HashModels(m)
	if err != nil {
		return Provenance{}, err
	}
	if version == "" {
		version = "in-memory"
	}
	return Provenance{Version: version, Device: device, Hash: hash}, nil
}

// Suite owns the concurrent engine (device, harness, lazily trained models,
// cached predictor) that the experiments share. All training and prediction
// flows through internal/engine, the same path the commands use.
type Suite struct {
	eng *engine.Engine

	// modelVersion labels the models' registry version in report
	// provenance; empty means trained in-memory for this run.
	modelVersion string

	trainOnce sync.Once
	trainErr  error

	sweepMu sync.Mutex
	sweeps  map[string][]measure.Relative
}

// NewSuite builds a suite on a fresh simulated Titan X with the paper's
// training options.
func NewSuite() *Suite {
	return NewSuiteWithOptions(core.Options{})
}

// NewSuiteWithOptions builds a suite with custom training options (used by
// the ablation benchmarks and fast tests).
func NewSuiteWithOptions(opts core.Options) *Suite {
	return NewSuiteWithEngine(engine.NewDefault(engine.Options{Core: opts}))
}

// NewSuiteWithEngine builds a suite over an existing engine (used to control
// worker counts or reuse an already trained engine).
func NewSuiteWithEngine(e *engine.Engine) *Suite {
	return &Suite{eng: e, sweeps: map[string][]measure.Relative{}}
}

// Harness exposes the measurement harness.
func (s *Suite) Harness() *measure.Harness { return s.eng.Harness() }

// Engine exposes the suite's engine.
func (s *Suite) Engine() *engine.Engine { return s.eng }

// TrainingKernels adapts the 106 synthetic micro-benchmarks.
func TrainingKernels() []core.TrainingKernel {
	return engine.TrainingKernels()
}

// Models trains (once) the speedup and energy models on the full synthetic
// training set via the engine's worker pool.
func (s *Suite) Models() (*core.Models, error) {
	s.trainOnce.Do(func() {
		if s.eng.Trained() {
			return // engine arrived pre-trained
		}
		if _, err := s.eng.TrainDefault(context.Background()); err != nil {
			s.trainErr = fmt.Errorf("experiments: training: %w", err)
		}
	})
	if s.trainErr != nil {
		return nil, s.trainErr
	}
	return s.eng.Models(), nil
}

// Predictor returns the engine's cached concurrent predictor.
func (s *Suite) Predictor() (*engine.Predictor, error) {
	if _, err := s.Models(); err != nil {
		return nil, err
	}
	return s.eng.Predictor()
}

// SetModelVersion labels the suite's models with their registry version
// id, recorded in every table's provenance. Call it when the engine was
// loaded from a registry snapshot rather than trained in-process.
func (s *Suite) SetModelVersion(version string) { s.modelVersion = version }

// Provenance returns the provenance of the suite's models (training them
// first if needed): the version label, the device profile, and the model
// content hash that every generated table records.
func (s *Suite) Provenance() (Provenance, error) {
	models, err := s.Models()
	if err != nil {
		return Provenance{}, err
	}
	return ProvenanceFor(s.Harness().Device().Name(), models, s.modelVersion)
}

// Sweep measures (once) the full configuration sweep of a test benchmark.
func (s *Suite) Sweep(name string) ([]measure.Relative, error) {
	s.sweepMu.Lock()
	defer s.sweepMu.Unlock()
	if rels, ok := s.sweeps[name]; ok {
		return rels, nil
	}
	b, err := bench.ByName(name)
	if err != nil {
		return nil, err
	}
	rels, err := s.Harness().Sweep(b.Profile())
	if err != nil {
		return nil, fmt.Errorf("experiments: sweeping %s: %w", name, err)
	}
	s.sweeps[name] = rels
	return rels, nil
}
