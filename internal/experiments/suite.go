// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 4): the motivational frequency sweeps (Fig. 1), the
// supported-configuration maps (Fig. 4), the application characterization
// scatter (Fig. 5), the per-memory-frequency prediction-error analyses for
// speedup (Fig. 6) and normalized energy (Fig. 7), the predicted-vs-real
// Pareto fronts (Fig. 8), and the coverage-difference table (Table 2).
//
// Each experiment returns structured rows/series and has a Render function
// that prints the same content as an aligned text report, so the cmd
// binaries and the root benchmarks share one implementation.
package experiments

import (
	"fmt"
	"sync"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/measure"
	"repro/internal/nvml"
	"repro/internal/synth"
)

// Suite owns the simulated device, harness, and lazily trained models that
// the experiments share.
type Suite struct {
	harness *measure.Harness
	opts    core.Options

	trainOnce sync.Once
	models    *core.Models
	trainErr  error

	sweepMu sync.Mutex
	sweeps  map[string][]measure.Relative
}

// NewSuite builds a suite on a fresh simulated Titan X with the paper's
// training options.
func NewSuite() *Suite {
	return NewSuiteWithOptions(core.Options{})
}

// NewSuiteWithOptions builds a suite with custom training options (used by
// the ablation benchmarks and fast tests).
func NewSuiteWithOptions(opts core.Options) *Suite {
	return &Suite{
		harness: measure.NewHarness(nvml.NewDevice(gpu.TitanX())),
		opts:    opts,
		sweeps:  map[string][]measure.Relative{},
	}
}

// Harness exposes the measurement harness.
func (s *Suite) Harness() *measure.Harness { return s.harness }

// TrainingKernels adapts the 106 synthetic micro-benchmarks.
func TrainingKernels() []core.TrainingKernel {
	bs := synth.Generate()
	out := make([]core.TrainingKernel, len(bs))
	for i := range bs {
		out[i] = core.TrainingKernel{
			Name:     bs[i].Name,
			Features: bs[i].Features(),
			Profile:  bs[i].Profile(),
		}
	}
	return out
}

// Models trains (once) the speedup and energy models on the full synthetic
// training set.
func (s *Suite) Models() (*core.Models, error) {
	s.trainOnce.Do(func() {
		samples, err := core.BuildTrainingSet(s.harness, TrainingKernels(), s.opts)
		if err != nil {
			s.trainErr = fmt.Errorf("experiments: building training set: %w", err)
			return
		}
		s.models, s.trainErr = core.Train(samples, s.opts)
	})
	return s.models, s.trainErr
}

// Predictor returns a predictor over the suite's device ladder.
func (s *Suite) Predictor() (*core.Predictor, error) {
	m, err := s.Models()
	if err != nil {
		return nil, err
	}
	return core.NewPredictor(m, s.harness.Device().Sim().Ladder), nil
}

// Sweep measures (once) the full configuration sweep of a test benchmark.
func (s *Suite) Sweep(name string) ([]measure.Relative, error) {
	s.sweepMu.Lock()
	defer s.sweepMu.Unlock()
	if rels, ok := s.sweeps[name]; ok {
		return rels, nil
	}
	b, err := bench.ByName(name)
	if err != nil {
		return nil, err
	}
	rels, err := s.harness.Sweep(b.Profile())
	if err != nil {
		return nil, fmt.Errorf("experiments: sweeping %s: %w", name, err)
	}
	s.sweeps[name] = rels
	return rels, nil
}
