// Scheduler: an energy-aware batch scheduler built on top of the predictive
// framework — the downstream system the paper's introduction motivates
// (large-scale compute clusters paying for energy).
//
// A queue of heterogeneous kernels is executed one after another on the
// simulated GPU. Before each kernel launches, the scheduler predicts its
// Pareto set from static features alone and applies, through the NVML API,
// the predicted configuration that minimizes energy while keeping at least
// 90% of default performance. The run is compared against the
// fixed-default-clocks baseline.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/engine"
)

func main() {
	eng := engine.NewDefault(engine.Options{Core: core.Options{SettingsPerKernel: 16}})
	harness := eng.Harness()
	device := harness.Device()

	if _, err := eng.TrainDefault(context.Background()); err != nil {
		log.Fatal(err)
	}
	predictor, err := eng.Predictor()
	if err != nil {
		log.Fatal(err)
	}

	// The batch: a mix of compute- and memory-dominated jobs.
	queue := []string{"MatrixMultiply", "MT", "k-NN", "Blackscholes", "Convolution", "AES"}

	var defTime, defEnergy, tunedTime, tunedEnergy float64
	fmt.Printf("%-16s %-12s %10s %10s %12s\n",
		"job", "chosen cfg", "speedup", "vs default", "energy ratio")
	for _, name := range queue {
		b, err := bench.ByName(name)
		if err != nil {
			log.Fatal(err)
		}

		// Baseline: default clocks.
		base, err := harness.Baseline(b.Profile())
		if err != nil {
			log.Fatal(err)
		}
		defTime += base.KernelSec
		defEnergy += base.EnergyJ

		// Scheduler decision from static features only.
		set := predictor.ParetoSet(b.Features())
		choice, ok := pickFrugal(set, 0.90)
		if !ok {
			choice = core.Prediction{Config: device.Sim().Ladder.Default()}
		}
		rel, err := harness.MeasureRelative(b.Profile(), choice.Config, base)
		if err != nil {
			log.Fatal(err)
		}
		tunedTime += rel.Raw.KernelSec
		tunedEnergy += rel.Raw.EnergyJ
		fmt.Printf("%-16s %-12s %10.3f %9.1f%% %11.1f%%\n",
			name, choice.Config, rel.Speedup, 100*rel.Speedup, 100*rel.NormEnergy)
	}

	fmt.Printf("\nbatch totals (per-launch sums):\n")
	fmt.Printf("  default clocks: %7.2f ms, %7.2f J\n", 1e3*defTime, defEnergy)
	fmt.Printf("  scheduled:      %7.2f ms, %7.2f J\n", 1e3*tunedTime, tunedEnergy)
	fmt.Printf("  energy saved: %.1f%%  at %.1f%% slowdown\n",
		100*(1-tunedEnergy/defEnergy), 100*(tunedTime/defTime-1))
}

// pickFrugal returns the modeled prediction with minimum energy among those
// with predicted speedup at or above the floor.
func pickFrugal(set []core.Prediction, floor float64) (core.Prediction, bool) {
	best := core.Prediction{NormEnergy: math.Inf(1)}
	found := false
	for _, p := range set {
		if p.MemLHeuristic {
			continue
		}
		if p.Speedup >= floor && p.NormEnergy < best.NormEnergy {
			best, found = p, true
		}
	}
	return best, found
}
