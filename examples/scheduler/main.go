// Scheduler: an energy-aware batch scheduler built on top of the policy
// governor — the downstream system the paper's introduction motivates
// (large-scale compute clusters paying for energy).
//
// A queue of heterogeneous kernels is executed one after another on the
// simulated GPU. Before each kernel launches, the scheduler asks the
// governor (internal/policy) for a frequency configuration under the
// operator's named policy, applies it through the NVML API, and measures
// the launch. The same batch is replayed under several policies — the
// frugal default (min-energy at ≤10% slowdown), the energy-delay product,
// and the Pareto knee — and each run is compared against the
// fixed-default-clocks baseline, showing how one trained model serves many
// operator intents.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/measure"
	"repro/internal/policy"
)

// The batch: a mix of compute- and memory-dominated jobs.
var queue = []string{"MatrixMultiply", "MT", "k-NN", "Blackscholes", "Convolution", "AES"}

func main() {
	eng := engine.NewDefault(engine.Options{Core: core.Options{SettingsPerKernel: 16}})
	if _, err := eng.TrainDefault(context.Background()); err != nil {
		log.Fatal(err)
	}
	predictor, err := eng.Predictor()
	if err != nil {
		log.Fatal(err)
	}
	governor := policy.NewGovernor(predictor, 0)

	// Baseline: the whole batch at default clocks, measured once and
	// reused as the reference for every policy replay.
	baselines, defTime, defEnergy, err := runBaseline(eng.Harness())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline (default clocks): %7.2f ms, %7.2f J\n\n", 1e3*defTime, defEnergy)

	specs := []policy.Spec{
		{Name: policy.MinEnergy}, // ≤10% predicted slowdown
		{Name: policy.EDP},
		{Name: policy.Balanced},
	}
	for _, spec := range specs {
		if err := runBatch(eng.Harness(), governor, spec, baselines, defTime, defEnergy); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
}

// runBaseline measures every job at default clocks, returning the per-job
// baselines plus the summed kernel time and energy.
func runBaseline(h *measure.Harness) (baselines map[string]measure.Measurement, timeSec, energyJ float64, err error) {
	baselines = make(map[string]measure.Measurement, len(queue))
	for _, name := range queue {
		b, err := bench.ByName(name)
		if err != nil {
			return nil, 0, 0, err
		}
		base, err := h.Baseline(b.Profile())
		if err != nil {
			return nil, 0, 0, err
		}
		baselines[name] = base
		timeSec += base.KernelSec
		energyJ += base.EnergyJ
	}
	return baselines, timeSec, energyJ, nil
}

// runBatch replays the queue under one policy: per job, the governor
// decides a configuration from static features alone, the scheduler
// applies it via the NVML management API, and the launch is measured
// against the job's pre-measured default-clocks baseline.
func runBatch(h *measure.Harness, governor *policy.Governor, spec policy.Spec, baselines map[string]measure.Measurement, defTime, defEnergy float64) error {
	device := h.Device()
	fmt.Printf("policy %s:\n", spec.WithDefaults().Name)
	fmt.Printf("  %-16s %-12s %10s %12s %s\n", "job", "chosen cfg", "speedup", "energy ratio", "")
	var tunedTime, tunedEnergy float64
	for _, name := range queue {
		b, err := bench.ByName(name)
		if err != nil {
			return err
		}
		decision, err := governor.Decide(b.Features(), spec)
		if err != nil {
			return err
		}
		// Apply the chosen clocks through the management API, as a real
		// deployment would, and launch at whatever the hardware actually
		// applied (the Titan X clamps some requests).
		cfg := decision.Chosen.Config
		if err := device.DeviceSetApplicationsClocks(cfg.Mem, cfg.Core); err != nil {
			return err
		}
		applied := device.DeviceGetApplicationsClocks()
		rel, err := h.MeasureRelative(b.Profile(), applied, baselines[name])
		if err != nil {
			return err
		}
		tunedTime += rel.Raw.KernelSec
		tunedEnergy += rel.Raw.EnergyJ
		note := ""
		if !decision.Feasible {
			note = "[fallback: " + decision.Fallback + "]"
		}
		fmt.Printf("  %-16s %-12s %10.3f %11.1f%% %s\n", name, cfg, rel.Speedup, 100*rel.NormEnergy, note)
	}
	fmt.Printf("  batch: %7.2f ms, %7.2f J — energy saved %.1f%% at %.1f%% slowdown\n",
		1e3*tunedTime, tunedEnergy,
		100*(1-tunedEnergy/defEnergy), 100*(tunedTime/defTime-1))
	return nil
}
