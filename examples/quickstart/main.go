// Quickstart: train the two frequency-scaling models on a reduced synthetic
// training set, then predict the Pareto-optimal memory/core frequency
// configurations of a SAXPY kernel that the models have never seen —
// without executing it (the paper's headline use case).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/freq"
	"repro/internal/gpu"
	"repro/internal/measure"
	"repro/internal/nvml"
)

const saxpy = `
__kernel void saxpy(__global const float* x, __global float* y,
                    float a, int n) {
    int i = get_global_id(0);
    if (i < n) {
        y[i] = a * x[i] + y[i];
    }
}`

func main() {
	// 1. A simulated GTX Titan X behind the NVML management API.
	device := nvml.NewDevice(gpu.TitanX())
	harness := measure.NewHarness(device)
	fmt.Printf("device: %s (default %v)\n\n", device.Name(), device.Sim().Ladder.Default())

	// 2. Training phase: run the synthetic micro-benchmarks at sampled
	// frequency settings and fit the speedup + energy SVR models.
	// (SettingsPerKernel: 40 reproduces the paper; 16 keeps this example
	// fast.)
	opts := core.Options{SettingsPerKernel: 16}
	samples, err := core.BuildTrainingSet(harness, experiments.TrainingKernels(), opts)
	if err != nil {
		log.Fatal(err)
	}
	models, err := core.Train(samples, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d samples: speedup model %d SVs, energy model %d SVs\n\n",
		len(samples), models.Speedup.NumSV(), models.Energy.NumSV())

	// 3. Prediction phase: static features only — the kernel never runs.
	predictor := core.NewPredictor(models, freq.TitanX())
	set, err := predictor.PredictSource(saxpy, "saxpy")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("predicted Pareto-optimal frequency configurations for saxpy:")
	fmt.Printf("%-12s %10s %12s\n", "mem@core", "speedup", "norm.energy")
	for _, p := range set {
		tag := ""
		if p.MemLHeuristic {
			tag = "  [mem-L heuristic]"
		}
		fmt.Printf("%-12s %10.3f %12.3f%s\n", p.Config, p.Speedup, p.NormEnergy, tag)
	}
}
