// Quickstart: train the two frequency-scaling models on a reduced synthetic
// training set, then predict the Pareto-optimal memory/core frequency
// configurations of a SAXPY kernel that the models have never seen —
// without executing it (the paper's headline use case).
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/engine"
)

const saxpy = `
__kernel void saxpy(__global const float* x, __global float* y,
                    float a, int n) {
    int i = get_global_id(0);
    if (i < n) {
        y[i] = a * x[i] + y[i];
    }
}`

func main() {
	// 1. The concurrent engine over a simulated GTX Titan X behind the
	// NVML management API.
	eng := engine.NewDefault(engine.Options{
		// SettingsPerKernel: 40 reproduces the paper; 16 keeps this
		// example fast. Workers defaults to NumCPU: the 106
		// micro-benchmarks are measured in parallel.
		Core: core.Options{SettingsPerKernel: 16},
	})
	device := eng.Harness().Device()
	fmt.Printf("device: %s (default %v)\n\n", device.Name(), device.Sim().Ladder.Default())

	// 2. Training phase: the engine shards the micro-benchmark
	// measurements across its worker pool and fits the speedup + energy
	// SVR models concurrently.
	models, err := eng.TrainDefault(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained with %d workers: speedup model %d SVs, energy model %d SVs\n\n",
		eng.Options().Workers, models.Speedup.NumSV(), models.Energy.NumSV())

	// 3. Prediction phase: static features only — the kernel never runs.
	predictor, err := eng.Predictor()
	if err != nil {
		log.Fatal(err)
	}
	set, err := predictor.PredictSource(saxpy, "saxpy")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("predicted Pareto-optimal frequency configurations for saxpy:")
	fmt.Printf("%-12s %10s %12s\n", "mem@core", "speedup", "norm.energy")
	for _, p := range set {
		tag := ""
		if p.MemLHeuristic {
			tag = "  [mem-L heuristic]"
		}
		fmt.Printf("%-12s %10.3f %12.3f%s\n", p.Config, p.Speedup, p.NormEnergy, tag)
	}
}
