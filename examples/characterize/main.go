// Characterize: exhaustively measure one of the paper's test benchmarks
// over every supported frequency configuration of the simulated Titan X
// (the Fig. 5 procedure), print the per-memory-clock objective ranges, the
// measured Pareto front, and how the default configuration compares —
// reproducing the paper's observation that the default is good but not
// always Pareto-optimal.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/pareto"
)

func main() {
	name := flag.String("bench", "Convolution", "benchmark name (see -list)")
	list := flag.Bool("list", false, "list available benchmarks")
	flag.Parse()
	if *list {
		for _, n := range bench.Names() {
			fmt.Println(n)
		}
		return
	}

	b, err := bench.ByName(*name)
	if err != nil {
		log.Fatal(err)
	}
	harness := engine.NewDefault(engine.Options{}).Harness()
	ladder := harness.Device().Sim().Ladder

	rels, err := harness.Sweep(b.Profile())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d configurations measured (paper: ~70 min on hardware, instant here)\n\n",
		b.Name, len(rels))

	// Objective ranges per memory clock (the Fig. 5 clusters).
	for _, m := range ladder.MemClocks() {
		minS, maxS := 1e9, -1e9
		minE, maxE := 1e9, -1e9
		for _, r := range rels {
			if r.Config.Mem != m {
				continue
			}
			minS, maxS = min(minS, r.Speedup), max(maxS, r.Speedup)
			minE, maxE = min(minE, r.NormEnergy), max(maxE, r.NormEnergy)
		}
		fmt.Printf("mem %4d MHz: speedup [%5.2f, %5.2f]  energy [%5.2f, %5.2f]\n",
			m, minS, maxS, minE, maxE)
	}

	// Measured Pareto front.
	pts := make([]pareto.Point, len(rels))
	for i, r := range rels {
		pts[i] = pareto.Point{Speedup: r.Speedup, Energy: r.NormEnergy, ID: i}
	}
	front := pareto.Fast(pts)
	fmt.Printf("\nmeasured Pareto front (%d of %d configurations):\n", len(front), len(rels))
	fmt.Printf("%-12s %10s %12s\n", "mem@core", "speedup", "norm.energy")
	for _, p := range front {
		fmt.Printf("%-12s %10.3f %12.3f\n", rels[p.ID].Config, p.Speedup, p.Energy)
	}

	// Is the default configuration Pareto-optimal?
	def := ladder.Default()
	var defPt pareto.Point
	for i, r := range rels {
		if r.Config == def {
			defPt = pts[i]
		}
	}
	dominated := false
	for _, p := range front {
		if pareto.Dominates(p, defPt) {
			dominated = true
			fmt.Printf("\ndefault %v (speedup %.3f, energy %.3f) is dominated by %v (%.3f, %.3f)\n",
				def, defPt.Speedup, defPt.Energy, rels[p.ID].Config, p.Speedup, p.Energy)
			break
		}
	}
	if !dominated {
		fmt.Printf("\ndefault %v is Pareto-optimal for this kernel\n", def)
	}
}
