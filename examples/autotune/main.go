// Autotune: pick a frequency configuration for a user kernel under a named
// policy, verify it on the (simulated) hardware — and then keep the model
// honest in production with the closed adaptation loop: measured
// observations feed a drift detector, a workload shift triggers a guarded
// auto-retrain, and the governor's decisions recover without anyone
// retraining by hand.
//
// This is the full lifecycle the serving stack is built around:
//
//	train → serve → select → observe → drift → auto-retrain → re-select
//
// The same loop runs over HTTP in cmd/gpufreqd (POST /observe,
// GET /adapt/status); this example drives it in-process so every step is
// visible in order. See docs/TUTORIAL.md for the HTTP walkthrough.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/features"
	"repro/internal/freq"
	"repro/internal/gpu"
	"repro/internal/measure"
	"repro/internal/policy"
	"repro/internal/registry"
)

// A 7-point stencil smoother: moderately memory-bound, unseen in training.
const stencil = `
__kernel void smooth7(__global const float* in, __global float* out,
                      int nx, int ny, int nz) {
    int gid = get_global_id(0);
    int x = gid % nx;
    int y = (gid / nx) % ny;
    int z = gid / (nx * ny);
    int xm = (x > 0) ? gid - 1 : gid;
    int xp = (x < nx - 1) ? gid + 1 : gid;
    int ym = (y > 0) ? gid - nx : gid;
    int yp = (y < ny - 1) ? gid + nx : gid;
    int zm = (z > 0) ? gid - nx * ny : gid;
    int zp = (z < nz - 1) ? gid + nx * ny : gid;
    float c = in[gid];
    float acc = in[xm] + in[xp] + in[ym] + in[yp] + in[zm] + in[zp];
    out[gid] = 0.4f * c + 0.1f * acc;
}`

func main() {
	eng := engine.NewDefault(engine.Options{Core: core.Options{SettingsPerKernel: 16}})
	harness := eng.Harness()
	ladder := harness.Device().Sim().Ladder

	// ---- Train and serve ------------------------------------------------
	fmt.Println("== train → serve ==")
	trainer := adapt.NewEngineTrainer(eng, nil)
	models, tr, err := trainer.Fit(context.Background(), nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	store, err := registry.Open("") // in-memory; gpufreqd uses -model-dir
	if err != nil {
		log.Fatal(err)
	}
	man, err := store.Save("titanx", "", models, tr)
	if err != nil {
		log.Fatal(err)
	}
	serving := registry.NewServing()
	install := func(version string, m *core.Models) error {
		if err := store.Activate("titanx", version); err != nil {
			return err
		}
		serving.Install(version, engine.NewPredictor(m, ladder, eng.Options()))
		return nil
	}
	if err := install(man.Version, models); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving %s (training residuals: speedup %.1f%%, energy %.1f%%)\n\n",
		man.Version, 100*tr.SpeedupRMSE, 100*tr.EnergyRMSE)

	// The production kernel, as the fleet initially runs it.
	prof := mustProfile()
	st := mustFeatures()

	// ---- Select: resolve a policy to one configuration ------------------
	fmt.Println("== select ==")
	spec := policy.Spec{Name: policy.MinEnergy, MaxSlowdown: 0.05}
	decision := decide(serving, st, spec)
	fmt.Printf("policy %s (speedup >= %.2f) chose %v: predicted speedup %.3f, energy %.3f\n",
		spec.Name, spec.SpeedupFloor(), decision.Chosen.Config,
		decision.Chosen.Speedup, decision.Chosen.NormEnergy)
	rel := measureAt(harness, prof, decision.Chosen.Config)
	fmt.Printf("measured at %v: speedup %.3f, energy %.3f — model and hardware agree\n\n",
		decision.Chosen.Config, rel.Speedup, rel.NormEnergy)

	// ---- Observe: close the loop ----------------------------------------
	// Production reports what actually happened after running at selected
	// clocks. Calibrate the drift baseline on normal operation, exactly as
	// docs/OPERATIONS.md recommends for workloads far from the synthetic
	// training corpus.
	obsConfigs := observationConfigs(ladder)
	baseS, baseE := observedError(serving, harness, prof, st, obsConfigs)
	ctl := adapt.New(adapt.Config{
		Auto: true,
		Sync: true, // inline retrains keep the narrative ordered
		// 1.5× the calibrated normal-operation error: the tighter
		// threshold docs/OPERATIONS.md recommends when the baseline is
		// measured on the live workload rather than training residuals.
		DriftFactor:     1.5,
		Window:          2 * len(obsConfigs),
		MinSamples:      len(obsConfigs),
		BaselineSpeedup: baseS,
		BaselineEnergy:  baseE,
		Cooldown:        time.Hour,
	}, adapt.Deps{
		Device: "titanx",
		Store:  store,
		Current: func() (*engine.Predictor, string, bool) {
			version, pred, _, ok := serving.Current()
			return pred, version, ok
		},
		Install: install,
		Trainer: trainer,
	})
	fmt.Println("== observe (normal operation) ==")
	res := observePhase(ctl, harness, prof, st, obsConfigs)
	fmt.Printf("%d observations, rolling error: speedup %.1f%%, energy %.1f%% — %s\n\n",
		res.Drift.Samples, 100*res.Drift.SpeedupRMSE, 100*res.Drift.EnergyRMSE, res.Drift.Reason)

	// ---- Drift: the workload shifts -------------------------------------
	// The dataset outgrows the L2 cache and accesses scatter: the same
	// kernel, the same static features — completely different behaviour.
	fmt.Println("== drift (the dataset outgrew the cache) ==")
	shifted := prof
	shifted.CacheHitRate = 0
	shifted.Coalescing = 0.15
	stale := decide(serving, st, spec)
	staleRel := measureAt(harness, shifted, stale.Chosen.Config)
	fmt.Printf("the old decision %v now measures speedup %.3f vs predicted %.3f — the model is silently wrong\n",
		stale.Chosen.Config, staleRel.Speedup, stale.Chosen.Speedup)

	res = observePhase(ctl, harness, shifted, st, obsConfigs)
	fmt.Printf("after %d shifted observations: rolling speedup error %.1f%% (threshold %.1f%%)\n",
		res.Drift.Samples, 100*res.Drift.SpeedupRMSE, 100*res.Drift.ThresholdSpeedup)

	// ---- Auto-retrain with guardrails -----------------------------------
	fmt.Println("\n== auto-retrain ==")
	rs := ctl.Status().Retrain
	if rs.Retrains == 0 {
		log.Fatal("the loop did not retrain (drift not detected)")
	}
	fmt.Printf("drift triggered retrain → %s (%s)\n", rs.LastVersion, rs.LastOutcome)
	if rs.LastHoldout != nil {
		fmt.Printf("holdout check: candidate %.1f%% vs active %.1f%% over %d held-out observations (passed=%v)\n",
			100*rs.LastHoldout.CandidateRMSE, 100*rs.LastHoldout.ActiveRMSE,
			rs.LastHoldout.Samples, rs.LastHoldout.Passed)
	}
	version, _, _, _ := serving.Current()
	fmt.Printf("serving hot-swapped to %s (rollback target: %s)\n\n", version, man.Version)

	// ---- Re-select: the loop paid off -----------------------------------
	fmt.Println("== re-select ==")
	fresh := decide(serving, st, spec)
	freshRel := measureAt(harness, shifted, fresh.Chosen.Config)
	fmt.Printf("policy %s now chooses %v: predicted speedup %.3f, measured %.3f\n",
		spec.Name, fresh.Chosen.Config, fresh.Chosen.Speedup, freshRel.Speedup)

	// The frozen model vs the adapted one, both judged on the shifted
	// workload across every observation configuration.
	frozen := registry.NewServing()
	frozen.Install(man.Version, engine.NewPredictor(models, ladder, eng.Options()))
	oldS, oldE := observedError(frozen, harness, shifted, st, obsConfigs)
	newS, newE := observedError(serving, harness, shifted, st, obsConfigs)
	fmt.Printf("model error on the shifted workload: speedup %.1f%% → %.1f%%, energy %.1f%% → %.1f%%\n",
		100*oldS, 100*newS, 100*oldE, 100*newE)
	if math.Max(newS, newE) < math.Max(oldS, oldE) {
		fmt.Println("the loop recovered the workload shift without a manual retrain")
	}
}

// decide resolves the policy through the serving governor.
func decide(serving *registry.Serving, st features.Static, spec policy.Spec) policy.Decision {
	_, _, gov, ok := serving.Current()
	if !ok {
		log.Fatal("nothing is serving")
	}
	d, err := gov.Decide(st, spec)
	if err != nil {
		log.Fatal(err)
	}
	return d
}

// observationConfigs samples the configurations production actually runs
// at: the two highest memory clocks across the core range.
func observationConfigs(ladder *freq.Ladder) []freq.Config {
	var cfgs []freq.Config
	for _, m := range ladder.MemClocks()[:2] {
		cores := ladder.CoreClocks(m)
		step := len(cores)/5 + 1
		for i := 0; i < len(cores); i += step {
			cfgs = append(cfgs, freq.Config{Mem: m, Core: cores[i]})
		}
	}
	return cfgs
}

// observePhase measures the kernel at every observation configuration and
// reports each sample into the adaptation loop.
func observePhase(ctl *adapt.Controller, h *measure.Harness, prof gpu.KernelProfile, st features.Static, cfgs []freq.Config) adapt.IngestResult {
	hc := h.Clone()
	base, err := hc.Baseline(prof)
	if err != nil {
		log.Fatal(err)
	}
	var last adapt.IngestResult
	for _, cfg := range cfgs {
		rel, err := hc.MeasureRelative(prof, cfg, base)
		if err != nil {
			log.Fatal(err)
		}
		last, err = ctl.Observe(adapt.Observation{
			Kernel:     "smooth7",
			Features:   st,
			Config:     rel.Config,
			Speedup:    rel.Speedup,
			NormEnergy: rel.NormEnergy,
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	return last
}

// observedError measures the serving model's error over the observation
// configurations — the calibration that anchors the drift baseline to
// normal operation. The error definition is the adaptation loop's own
// (adapt.Residuals).
func observedError(serving *registry.Serving, h *measure.Harness, prof gpu.KernelProfile, st features.Static, cfgs []freq.Config) (speedup, energy float64) {
	_, pred, _, ok := serving.Current()
	if !ok {
		log.Fatal("nothing is serving")
	}
	hc := h.Clone()
	base, err := hc.Baseline(prof)
	if err != nil {
		log.Fatal(err)
	}
	obs := make([]adapt.Observation, 0, len(cfgs))
	for _, cfg := range cfgs {
		rel, err := hc.MeasureRelative(prof, cfg, base)
		if err != nil {
			log.Fatal(err)
		}
		obs = append(obs, adapt.Observation{
			Features: st, Config: rel.Config,
			Speedup: rel.Speedup, NormEnergy: rel.NormEnergy,
		})
	}
	return adapt.Residuals(pred, obs)
}

// measureAt measures the kernel at one configuration relative to default
// clocks.
func measureAt(h *measure.Harness, prof gpu.KernelProfile, cfg freq.Config) measure.Relative {
	hc := h.Clone()
	base, err := hc.Baseline(prof)
	if err != nil {
		log.Fatal(err)
	}
	rel, err := hc.MeasureRelative(prof, cfg, base)
	if err != nil {
		log.Fatal(err)
	}
	return rel
}

func mustFeatures() features.Static {
	st, err := features.ExtractSource(stencil, "smooth7")
	if err != nil {
		log.Fatal(err)
	}
	return st
}

func mustProfile() gpu.KernelProfile {
	prof, err := gpu.ProfileFromSource(stencil, "smooth7", 1<<21)
	if err != nil {
		log.Fatal(err)
	}
	prof.CacheHitRate = 0.6 // stencil neighbours mostly hit in L2
	return prof
}
