// Autotune: pick a frequency configuration for a user kernel under an
// explicit policy — either "fastest within an energy budget" or "most
// frugal above a performance floor" — using the predicted Pareto set, then
// verify the choice against the simulated hardware.
//
// This is the deployment scenario the paper motivates: per-application
// static clock setting via nvmlDeviceSetApplicationsClocks without ever
// profiling the application across the 177-configuration space.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gpu"
)

// A 7-point stencil smoother: moderately memory-bound, unseen in training.
const stencil = `
__kernel void smooth7(__global const float* in, __global float* out,
                      int nx, int ny, int nz) {
    int gid = get_global_id(0);
    int x = gid % nx;
    int y = (gid / nx) % ny;
    int z = gid / (nx * ny);
    int xm = (x > 0) ? gid - 1 : gid;
    int xp = (x < nx - 1) ? gid + 1 : gid;
    int ym = (y > 0) ? gid - nx : gid;
    int yp = (y < ny - 1) ? gid + nx : gid;
    int zm = (z > 0) ? gid - nx * ny : gid;
    int zp = (z < nz - 1) ? gid + nx * ny : gid;
    float c = in[gid];
    float acc = in[xm] + in[xp] + in[ym] + in[yp] + in[zm] + in[zp];
    out[gid] = 0.4f * c + 0.1f * acc;
}`

func main() {
	eng := engine.NewDefault(engine.Options{Core: core.Options{SettingsPerKernel: 16}})
	harness := eng.Harness()
	device := harness.Device()

	if _, err := eng.TrainDefault(context.Background()); err != nil {
		log.Fatal(err)
	}
	predictor, err := eng.Predictor()
	if err != nil {
		log.Fatal(err)
	}

	set, err := predictor.PredictSource(stencil, "smooth7")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predicted Pareto set: %d configurations\n\n", len(set))

	// Policy A: minimize energy subject to speedup >= 0.95.
	if cfg, ok := frugalAbove(set, 0.95); ok {
		fmt.Printf("policy A (most frugal with speedup >= 0.95): %v\n", cfg.Config)
		fmt.Printf("  predicted: speedup %.3f, normalized energy %.3f\n", cfg.Speedup, cfg.NormEnergy)
	} else {
		fmt.Println("policy A: no predicted configuration meets the floor")
	}

	// Policy B: maximize speedup subject to normalized energy <= 1.0.
	if cfg, ok := fastestUnder(set, 1.0); ok {
		fmt.Printf("policy B (fastest with energy <= 1.0):        %v\n", cfg.Config)
		fmt.Printf("  predicted: speedup %.3f, normalized energy %.3f\n", cfg.Speedup, cfg.NormEnergy)

		// Apply the clocks through the management API and verify on the
		// simulated hardware, as a deployment harness would.
		if err := device.DeviceSetApplicationsClocks(cfg.Config.Mem, cfg.Config.Core); err != nil {
			log.Fatal(err)
		}
		applied := device.DeviceGetApplicationsClocks()
		prof := mustProfile()
		base, err := harness.Baseline(prof)
		if err != nil {
			log.Fatal(err)
		}
		rel, err := harness.MeasureRelative(prof, applied, base)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  measured:  speedup %.3f, normalized energy %.3f (applied %v)\n",
			rel.Speedup, rel.NormEnergy, applied)
	}
}

func frugalAbove(set []core.Prediction, floor float64) (core.Prediction, bool) {
	best := core.Prediction{NormEnergy: math.Inf(1)}
	found := false
	for _, p := range set {
		if p.MemLHeuristic {
			continue // unmodeled extrapolation: not trusted by policy
		}
		if p.Speedup >= floor && p.NormEnergy < best.NormEnergy {
			best, found = p, true
		}
	}
	return best, found
}

func fastestUnder(set []core.Prediction, cap float64) (core.Prediction, bool) {
	best := core.Prediction{Speedup: math.Inf(-1)}
	found := false
	for _, p := range set {
		if p.MemLHeuristic {
			continue
		}
		if p.NormEnergy <= cap && p.Speedup > best.Speedup {
			best, found = p, true
		}
	}
	return best, found
}

func mustProfile() gpu.KernelProfile {
	prof, err := gpu.ProfileFromSource(stencil, "smooth7", 1<<21)
	if err != nil {
		log.Fatal(err)
	}
	prof.CacheHitRate = 0.6 // stencil neighbours mostly hit in L2
	return prof
}
