// End-to-end integration test of the full reproduction pipeline at reduced
// scale: generate micro-benchmarks, measure them on the simulated device,
// train both models, predict a Pareto set for an unseen kernel, and check
// the paper's qualitative claims hold throughout.
package repro_test

import (
	"math"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/gpu"
	"repro/internal/measure"
	"repro/internal/nvml"
	"repro/internal/pareto"
)

func TestEndToEndPipeline(t *testing.T) {
	h := measure.NewHarness(nvml.NewDevice(gpu.TitanX()))
	opts := core.Options{SettingsPerKernel: 10}

	// Training phase (Fig. 2).
	samples, err := core.BuildTrainingSet(h, experiments.TrainingKernels(), opts)
	if err != nil {
		t.Fatalf("training set: %v", err)
	}
	if len(samples) < 106*8 {
		t.Fatalf("only %d samples", len(samples))
	}
	models, err := core.Train(samples, opts)
	if err != nil {
		t.Fatalf("train: %v", err)
	}

	// Prediction phase (Fig. 3) for an unseen application.
	conv, err := bench.ByName("Convolution")
	if err != nil {
		t.Fatal(err)
	}
	pred := core.NewPredictor(models, h.Device().Sim().Ladder)
	set := pred.ParetoSet(conv.Features())
	if len(set) < 3 {
		t.Fatalf("predicted Pareto set has %d points", len(set))
	}

	// Evaluate the predicted configurations against ground truth: the set
	// must dominate the naive low-power corner and include a configuration
	// at least as good as 95% of the measured optimum on each objective.
	base, err := h.Baseline(conv.Profile())
	if err != nil {
		t.Fatal(err)
	}
	sweep, err := h.Sweep(conv.Profile())
	if err != nil {
		t.Fatal(err)
	}
	bestS, bestE := 0.0, math.Inf(1)
	for _, r := range sweep {
		bestS = math.Max(bestS, r.Speedup)
		bestE = math.Min(bestE, r.NormEnergy)
	}
	var predBestS, predBestE = 0.0, math.Inf(1)
	var pts []pareto.Point
	for _, p := range set {
		rel, err := h.MeasureRelative(conv.Profile(), p.Config, base)
		if err != nil {
			t.Fatal(err)
		}
		predBestS = math.Max(predBestS, rel.Speedup)
		predBestE = math.Min(predBestE, rel.NormEnergy)
		pts = append(pts, pareto.Point{Speedup: rel.Speedup, Energy: rel.NormEnergy})
	}
	if predBestS < 0.95*bestS {
		t.Errorf("predicted set max speedup %.3f < 95%% of optimum %.3f", predBestS, bestS)
	}
	if predBestE > bestE/0.93 {
		t.Errorf("predicted set min energy %.3f misses optimum %.3f by > 7%%", predBestE, bestE)
	}

	// Coverage difference against the measured front must be small.
	var all []pareto.Point
	for _, r := range sweep {
		all = append(all, pareto.Point{Speedup: r.Speedup, Energy: r.NormEnergy})
	}
	d := pareto.CoverageDifference(pareto.Fast(all), pts)
	if d > 0.15 {
		t.Errorf("coverage difference %.4f too large for end-to-end pipeline", d)
	}
}

func TestDefaultConfigurationNotAlwaysOptimal(t *testing.T) {
	// The paper's motivating observation (Fig. 1c): the default
	// configuration may be dominated. Verify it happens for at least one
	// test benchmark on the simulated device.
	h := measure.NewHarness(nvml.NewDevice(gpu.TitanX()))
	dominatedSomewhere := false
	for _, name := range []string{"k-NN", "MT", "BitCompression"} {
		b, err := bench.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		sweep, err := h.Sweep(b.Profile())
		if err != nil {
			t.Fatal(err)
		}
		var defPt pareto.Point
		var pts []pareto.Point
		for _, r := range sweep {
			p := pareto.Point{Speedup: r.Speedup, Energy: r.NormEnergy}
			if r.Config == h.Device().Sim().Ladder.Default() {
				defPt = p
			}
			pts = append(pts, p)
		}
		for _, p := range pareto.Fast(pts) {
			if pareto.Dominates(p, defPt) {
				dominatedSomewhere = true
			}
		}
	}
	if !dominatedSomewhere {
		t.Error("default configuration Pareto-optimal for every probed benchmark; " +
			"the paper's motivation (dominant non-default settings exist) is lost")
	}
}
